"""Tests for the Reach Theory of Traces: Lemma A.2, Theorem A.3, Corollary A.4."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.domains.base import DomainError
from repro.domains.reach_traces import (
    AtLeastConstraint,
    ExactlyConstraint,
    ReachTracesDomain,
    eliminate_reach_quantifiers,
    expand_trace_predicate,
    lemma_a2_conflicts,
    lemma_a2_satisfiable,
    lemma_a2_witness,
    padded_prefix,
    starts_with_padded,
)
from repro.experiments.exp10_trace_qe import sentence_corpus
from repro.logic.builders import atom, conj, const, exists, forall, implies, neq, var
from repro.logic.formulas import is_quantifier_free
from repro.logic.terms import Const
from repro.turing.builders import halt_immediately, loop_forever, unary_eraser
from repro.turing.encoding import encode_machine
from repro.turing.traces import has_at_least_traces, has_exactly_traces

DOMAIN = ReachTracesDomain()
ERASER = encode_machine(unary_eraser())
LOOPER = encode_machine(loop_forever())
HALTER = encode_machine(halt_immediately())


# --- padded prefixes ----------------------------------------------------------


def test_padded_prefix_and_starts_with():
    assert padded_prefix("1&1", 2) == "1&"
    assert padded_prefix("1", 3) == "1&&"
    assert padded_prefix("111", 0) == ""
    assert starts_with_padded("1&1", "1&")
    assert starts_with_padded("1", "1&&")
    assert not starts_with_padded("1", "11")
    assert starts_with_padded("", "&&")


# --- Lemma A.2 ----------------------------------------------------------------


def test_lemma_a2_satisfiable_cases():
    assert lemma_a2_satisfiable([], [])
    assert lemma_a2_satisfiable([AtLeastConstraint("111", 3)], [ExactlyConstraint("1&1", 2)])
    assert lemma_a2_satisfiable([], [ExactlyConstraint("111", 2), ExactlyConstraint("1&1", 3)])
    # same word, two different exact counts: conflict
    assert not lemma_a2_satisfiable([], [ExactlyConstraint("111", 2), ExactlyConstraint("111", 3)])
    # at-least exceeding an exact count on a shared prefix: conflict
    assert not lemma_a2_satisfiable([AtLeastConstraint("111", 5)], [ExactlyConstraint("11&", 2)])
    # an exact count of zero is impossible (the initial snapshot always exists)
    assert not lemma_a2_satisfiable([], [ExactlyConstraint("1", 0)])
    conflicts = lemma_a2_conflicts([AtLeastConstraint("111", 5)], [ExactlyConstraint("11&", 2)])
    assert conflicts and conflicts[0][0] == "at-least-vs-exactly"


def test_lemma_a2_witness_meets_constraints():
    at_least = [AtLeastConstraint("111", 3), AtLeastConstraint("&&&&", 2)]
    exactly = [ExactlyConstraint("1&11", 2), ExactlyConstraint("&1&&", 3)]
    machine_word = encode_machine(lemma_a2_witness(at_least, exactly))
    for constraint in at_least:
        assert has_at_least_traces(machine_word, constraint.word, constraint.count)
    for constraint in exactly:
        assert has_exactly_traces(machine_word, constraint.word, constraint.count)


def test_lemma_a2_witness_rejects_unsatisfiable():
    with pytest.raises(ValueError):
        lemma_a2_witness([AtLeastConstraint("111", 5)], [ExactlyConstraint("11&", 2)])


constraint_words = st.text(alphabet="1&", min_size=5, max_size=5)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(constraint_words, st.integers(1, 4)), max_size=3),
    st.lists(st.tuples(constraint_words, st.integers(1, 4)), max_size=3),
)
def test_lemma_a2_criterion_matches_witness_property(at_least_raw, exactly_raw):
    at_least = [AtLeastConstraint(w, c) for w, c in at_least_raw]
    exactly = [ExactlyConstraint(w, c) for w, c in exactly_raw]
    if lemma_a2_satisfiable(at_least, exactly):
        machine_word = encode_machine(lemma_a2_witness(at_least, exactly))
        assert all(has_at_least_traces(machine_word, c.word, c.count) for c in at_least)
        assert all(has_exactly_traces(machine_word, c.word, c.count) for c in exactly)
    else:
        assert lemma_a2_conflicts(at_least, exactly)


# --- evaluation of the extended signature --------------------------------------


def test_eval_predicates_of_reach_signature():
    from repro.turing.traces import trace_of

    trace = trace_of(ERASER, "1", 1)
    assert DOMAIN.eval_predicate("M", (ERASER,))
    assert DOMAIN.eval_predicate("W", ("1&",))
    assert DOMAIN.eval_predicate("T", (trace,))
    assert DOMAIN.eval_predicate("O", ("||",))
    assert DOMAIN.eval_predicate("B", ("1&", "1&1"))
    assert not DOMAIN.eval_predicate("B", ("1&", ERASER))
    assert DOMAIN.eval_predicate("D", (2, ERASER, "1"))
    assert DOMAIN.eval_predicate("E", (2, ERASER, "1"))
    assert not DOMAIN.eval_predicate("D", (2, "111", "1"))  # not a machine word
    assert DOMAIN.eval_function("m", (trace,)) == ERASER
    assert DOMAIN.eval_function("w", (trace,)) == "1"


def test_expand_trace_predicate_shape():
    formula = atom("P", var("a"), var("b"), var("c"))
    expanded = expand_trace_predicate(formula)
    assert is_quantifier_free(expanded)
    assert "P" not in str(expanded)


# --- Theorem A.3 / Corollary A.4 ------------------------------------------------


def test_quantifier_elimination_output_is_quantifier_free():
    for _name, sentence, _expected in sentence_corpus()[:8]:
        assert is_quantifier_free(eliminate_reach_quantifiers(sentence, DOMAIN))


def test_decide_sentence_corpus():
    for name, sentence, expected in sentence_corpus():
        assert DOMAIN.decide(sentence) == expected, name


def test_decide_requires_sentence():
    with pytest.raises(DomainError):
        DOMAIN.decide(atom("M", var("x")))


def test_decide_mixed_machine_equalities():
    from repro.logic.terms import Apply, Var

    # there is a machine different from the eraser (trivially true)
    assert DOMAIN.decide(exists("x", conj(atom("M", var("x")), neq(var("x"), Const(ERASER)))))
    # every trace's machine is a machine word
    machine_of_x = Apply("m", (Var("x"),))
    assert DOMAIN.decide(forall("x", implies(atom("T", var("x")), atom("M", machine_of_x))))


def test_decide_exact_count_via_substituted_constant():
    # direct equality substitution path: exists x. (x = trace & T(x))
    from repro.logic.builders import eq
    from repro.turing.traces import trace_of

    trace = trace_of(HALTER, "", 1)
    sentence = exists("x", conj(eq(var("x"), Const(trace)), atom("T", var("x"))))
    assert DOMAIN.decide(sentence)
