"""Tests for the morsel-parallel execution substrate.

Four layers:

* pool plumbing: the ``REPRO_PARALLEL_WORKERS`` override, explicit
  configuration (the serve layer's knob), and the ``worker_pool_info()``
  stats surface;
* property-style equivalence: over the corpora of every registered domain
  pack that claims the parallel substrate, the parallel executor — forced
  into many tiny morsels — must return exactly the vectorized,
  set-at-a-time, and tree-walking answers, including empty and one-element
  adoms, a 1-worker pool, and dictionary-encoded string carriers,
  deterministically across repeated runs (the corpora come from the pack
  registry, so a newly registered pack is covered without editing this
  file);
* the :class:`~repro.engine.plans.ParallelAlgebraPlan` fallback ladder
  (parallel → vectorized → set executor → tree walker), its size
  heuristic, its ``explain()`` morsel stats, and the ``"parallel"``
  plan-cache substrate key;
* serve-layer wiring: the ``morsel_workers`` policy knob and the
  ``parallel`` section of ``SessionManager.stats()``.
"""

import random
from concurrent.futures import ThreadPoolExecutor

import pytest

np = pytest.importorskip("numpy")

from repro import connect
from repro.domains import available_packs, get_pack
from repro.domains.equality import EqualityDomain
from repro.domains.presburger import PresburgerDomain
from repro.domains.successor import SuccessorDomain
from repro.engine.plans import (
    STRATEGIES,
    GuardedPlan,
    ParallelAlgebraPlan,
    VectorizedAlgebraPlan,
    plan_for_strategy,
)
from repro.experiments.corpora import (
    family_schema,
    family_state,
    numeric_state,
    ordered_query_corpus,
)
from repro.logic.parser import parse_formula
from repro.relational.calculus import evaluate_query_active_domain
from repro.relational.columnar import VectorizationError, run_plan_vectorized
from repro.relational.compile import CompilationError, compile_query
from repro.relational.exec import AdomScan
from repro.relational.parallel import (
    DEFAULT_MORSEL_ROWS,
    MorselStats,
    configure_worker_pool,
    default_worker_count,
    run_plan_parallel,
    worker_pool,
    worker_pool_info,
)
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.state import DatabaseState
from repro.serve.policy import ServerPolicy
from repro.serve.sessions import SessionManager

EQ = EqualityDomain()
PRESBURGER = PresburgerDomain()
SUCCESSOR = SuccessorDomain()


@pytest.fixture
def small_pool():
    """A private pool so these tests never mutate the process-wide one."""
    pool = ThreadPoolExecutor(max_workers=2)
    yield pool
    pool.shutdown()


# ---------------------------------------------------------------------------
# Pool plumbing
# ---------------------------------------------------------------------------


def test_default_worker_count_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "3")
    assert default_worker_count() == 3
    monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "not-a-number")
    assert default_worker_count() >= 1  # garbage falls back to cpu count
    monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "0")
    assert default_worker_count() >= 1  # non-positive falls back too
    monkeypatch.delenv("REPRO_PARALLEL_WORKERS")
    assert default_worker_count() >= 1


def test_configure_worker_pool_pins_and_unpins():
    try:
        assert configure_worker_pool(2) == 2
        assert worker_pool_info()["configured"] == 2
        assert getattr(worker_pool(), "_max_workers") == 2
        info = worker_pool_info()
        assert info["live"] and info["workers"] == 2
    finally:
        configure_worker_pool(None)
    assert worker_pool_info()["configured"] is None


def test_configure_worker_pool_rejects_nonpositive():
    with pytest.raises(ValueError):
        configure_worker_pool(0)


def test_worker_pool_info_counts_dispatched_tasks(small_pool):
    state = numeric_state(range(8))
    compiled = compile_query(
        parse_formula("S(x)"), state.schema, PRESBURGER
    )
    before = worker_pool_info()["tasks_dispatched"]
    run_plan_parallel(
        compiled.plan, state, compiled.universe(state), PRESBURGER,
        morsel_rows=2, pool=small_pool,
    )
    assert worker_pool_info()["tasks_dispatched"] > before


# ---------------------------------------------------------------------------
# Equivalence over the query corpora
# ---------------------------------------------------------------------------


def _assert_four_way_equivalent(query, state, domain, pool, morsel_rows=3):
    """Parallel, vectorized, set-at-a-time, and tree-walk answers coincide.

    Queries that do not compile or vectorize are skipped (their ladders are
    covered by the columnar tests); returns True when the case was checked.
    """
    try:
        compiled = compile_query(query, state.schema, domain)
    except CompilationError:
        return False
    adom = compiled.universe(state)
    try:
        vec_rows = run_plan_vectorized(compiled.plan, state, adom, domain)
    except VectorizationError:
        return False
    stats = MorselStats()
    par_rows = run_plan_parallel(
        compiled.plan, state, adom, domain,
        morsel_rows=morsel_rows, pool=pool, stats=stats,
    )
    expected = evaluate_query_active_domain(query, state, interpretation=domain)
    set_rows = compiled.execute(state, domain).rows
    assert par_rows == vec_rows == set_rows == expected.rows, (
        f"parallel {sorted(par_rows)} != vectorized {sorted(vec_rows)} "
        f"for {query} in {state}"
    )
    return True


def _parallel_pack_names():
    """Packs claiming the parallel substrate, from the registry."""
    return [
        name for name in available_packs() if get_pack(name).supports_parallel
    ]


@pytest.mark.parametrize("pack_name", _parallel_pack_names())
def test_pack_corpora_four_way_equivalence(pack_name, small_pool):
    pack = get_pack(pack_name)
    domain = pack.factory()
    checked = 0
    for corpus in pack.corpora():
        states = [corpus.canonical_state]
        if corpus.state_factory is not None:
            for seed in range(3):
                rng = random.Random(f"parallel/{pack_name}/{corpus.name}/{seed}")
                states.append(corpus.state_factory(rng, rng.randrange(0, 9)))
        for state in states:
            for pq in corpus.queries:
                checked += _assert_four_way_equivalent(
                    pq.query, state, domain, small_pool
                )
    assert checked > 0


def test_family_queries_four_way_equivalence(small_pool):
    for generations in (1, 2, 3):
        state = family_state(generations=generations)
        for text in ("F(x, y)", "exists y. (F(x, y) & F(y, z))", "~F(x, y)"):
            assert _assert_four_way_equivalent(
                parse_formula(text), state, EQ, small_pool
            )


def test_empty_and_one_element_adoms(small_pool):
    for values in ([], [7]):
        assert _assert_four_way_equivalent(
            parse_formula("S(x)"), numeric_state(values), PRESBURGER, small_pool
        ) or values == []  # the empty state may still check; never wrong
    state = DatabaseState(DatabaseSchema())
    assert run_plan_parallel(
        AdomScan(("x",)), state, [], morsel_rows=1, pool=small_pool
    ) == set()
    assert run_plan_parallel(
        AdomScan(("x",)), state, [5], morsel_rows=1, pool=small_pool
    ) == {(5,)}


def test_one_worker_pool_equivalence():
    pool = ThreadPoolExecutor(max_workers=1)
    try:
        for _name, query, _finite in ordered_query_corpus():
            _assert_four_way_equivalent(
                query, numeric_state([3, 1, 4, 1, 5, 9, 2, 6]), PRESBURGER,
                pool, morsel_rows=2,
            )
    finally:
        pool.shutdown()


def test_dictionary_carrier_equivalence(small_pool):
    schema = DatabaseSchema((RelationSchema("F", 2, ("a", "b")),))
    state = DatabaseState(
        schema, {"F": [("ann", "bob"), ("bob", "cal"), ("bob", "dee")]}
    )
    assert _assert_four_way_equivalent(
        parse_formula("exists y. (F(x, y) & F(y, z))"), state, EQ, small_pool
    )


def test_determinism_across_repeated_runs(small_pool):
    state = numeric_state([3 * i + 1 for i in range(40)])
    compiled = compile_query(
        parse_formula("exists y. (S(y) & x < y)"), state.schema, PRESBURGER,
        optimize=False,
    )
    adom = compiled.universe(state)
    runs = [
        run_plan_parallel(
            compiled.plan, state, adom, PRESBURGER,
            morsel_rows=7, pool=small_pool,
        )
        for _ in range(5)
    ]
    assert all(r == runs[0] for r in runs)


def test_morsel_stats_account_for_stages(small_pool):
    state = numeric_state([2 * i for i in range(30)])
    compiled = compile_query(
        parse_formula("exists y. (S(y) & x < y)"), state.schema, PRESBURGER,
        optimize=False,
    )
    stats = MorselStats()
    run_plan_parallel(
        compiled.plan, state, compiled.universe(state), PRESBURGER,
        morsel_rows=8, pool=small_pool, stats=stats,
    )
    assert stats.workers == 2
    assert stats.morsel_rows == 8
    assert stats.morsels > 1  # forced chunking actually chunked
    assert stats.stages  # per-stage accounting recorded
    assert "morsels=" in stats.describe()


def test_run_plan_parallel_rejects_bad_morsel_rows(small_pool):
    state = numeric_state([1])
    compiled = compile_query(parse_formula("S(x)"), state.schema, PRESBURGER)
    with pytest.raises(ValueError):
        run_plan_parallel(
            compiled.plan, state, compiled.universe(state), PRESBURGER,
            morsel_rows=0, pool=small_pool,
        )


# ---------------------------------------------------------------------------
# ParallelAlgebraPlan: ladder, heuristic, explain, cache keys
# ---------------------------------------------------------------------------


def test_parallel_strategy_is_registered():
    assert "parallel" in STRATEGIES
    plan = plan_for_strategy("parallel", EqualityDomain())
    assert isinstance(plan, ParallelAlgebraPlan)
    assert plan.strategy == "parallel"


def test_auto_prefers_parallel_plan_for_equality():
    session = connect("eq", family_schema())
    plan = session.plan()
    assert isinstance(plan, GuardedPlan)
    assert isinstance(plan.inner, ParallelAlgebraPlan)
    # ... which is still a VectorizedAlgebraPlan: the ladder is a refinement.
    assert isinstance(plan.inner, VectorizedAlgebraPlan)


def test_small_states_skip_the_pool():
    session = connect("eq", family_schema())
    plan = session.plan("parallel")
    state = family_state(generations=2)
    answer = session.execute(plan, "F(x, y)", state)
    # Below the size threshold the plan answers single-threaded.
    assert answer.method == "vectorized"
    assert "too small" in plan.fallback_reason
    assert plan.last_morsels is None


def test_large_states_run_parallel_and_explain_morsels():
    session = connect("eq", family_schema())
    plan = session.plan("parallel")
    plan.parallel_threshold = 1  # force the pool even on a small state
    plan.morsel_rows = 4
    state = family_state(generations=3)
    answer = session.execute(plan, "exists y. (F(x, y) & F(y, z))", state)
    assert answer.method == "parallel"
    assert plan.fallback_reason is None
    assert plan.last_morsels is not None
    assert "morsels:" in plan.explain()
    # The answer matches the explicitly-vectorized plan's.
    vec = session.execute(
        session.plan("vectorized"), "exists y. (F(x, y) & F(y, z))", state
    )
    assert set(answer.rows()) == set(vec.rows())


def test_parallel_plan_falls_back_to_set_executor_on_obstacle():
    schema = DatabaseSchema((RelationSchema("W", 1, ("word",)),))
    session = connect("traces", schema)
    plan = session.plan("parallel")
    state = session.state(W=[("1",), ("11",)])
    answer = session.execute(plan, "W(x) & P(x, x, x)", state)
    # The trace-domain predicate P has no vectorized kernel: both the
    # parallel and vectorized rungs are out, so the set executor answers.
    assert answer.method == "compiled-algebra"
    assert "P" in plan.fallback_reason
    assert "fell back" in plan.explain()


def test_parallel_plan_falls_back_to_tree_walker_on_compile_error():
    session = connect("succ")
    plan = plan_for_strategy("parallel", SUCCESSOR)
    state = numeric_state([1, 2, 3])
    answer = plan.execute(parse_formula("exists y. succ(x) = y"), state)
    # succ-term queries do not compile: the ladder bottoms out at the walker.
    assert answer.method == "active-domain"
    assert "tree-walking" in plan.fallback_reason


def test_plan_cache_keys_separate_parallel_and_vectorized_substrates():
    session = connect("eq", family_schema())
    state = family_state(generations=1)
    session.query("F(x, y)", state, strategy="parallel")
    session.query("F(x, y)", state, strategy="vectorized")
    info = session.plan_cache_info()
    assert info.size == 2 and info.misses == 2
    session.query("F(x, y)", state, strategy="parallel")
    assert session.plan_cache_info().hits == 1


# ---------------------------------------------------------------------------
# Serve-layer wiring
# ---------------------------------------------------------------------------


def test_policy_validates_morsel_workers():
    assert ServerPolicy(morsel_workers=None).morsel_workers is None
    assert ServerPolicy(morsel_workers=4).morsel_workers == 4
    with pytest.raises(ValueError):
        ServerPolicy(morsel_workers=0)
    with pytest.raises(ValueError):
        ServerPolicy(morsel_workers=-2)


def test_session_manager_configures_and_reports_the_morsel_pool():
    try:
        manager = SessionManager(ServerPolicy(morsel_workers=2))
        stats = manager.stats()
        assert stats["parallel"]["configured"] == 2
        assert stats["parallel"]["default"] >= 1
        # shutdown() stops the request pool but leaves the shared morsel
        # pool alone (it belongs to the library, not this manager).
        manager.shutdown()
        assert "parallel" in manager.stats()
    finally:
        configure_worker_pool(None)


def test_default_policy_leaves_the_pool_unconfigured():
    manager = SessionManager(ServerPolicy())
    try:
        assert manager.stats()["parallel"]["configured"] is None
    finally:
        manager.shutdown()
