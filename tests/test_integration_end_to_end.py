"""End-to-end integration tests crossing all the subsystems."""

from repro.domains import (
    EqualityDomain,
    NaturalOrderDomain,
    PresburgerDomain,
    ReachTracesDomain,
    SuccessorDomain,
    TraceDomain,
)
from repro.engine import FiniteAnswer, GuardedEngine, QueryEngine
from repro.experiments.corpora import family_schema, family_state, numeric_schema, numeric_state
from repro.experiments.exp01_intro_queries import grandfather_query, more_than_one_son_query
from repro.logic import atom, conj, exists, parse_formula, print_formula, var
from repro.safety import (
    ActiveDomainSyntax,
    EqualityRelativeSafety,
    FinitizationSyntax,
    OrderedRelativeSafety,
    TotalityEnumerator,
    TraceRelativeSafety,
    finitize,
    halting_reduction,
    totality_query,
)
from repro.turing import encode_machine, unary_eraser


def test_public_api_importable():
    import repro

    assert repro.__version__
    for module_name in ("logic", "relational", "turing", "domains", "safety", "engine"):
        assert hasattr(repro, module_name)


def test_family_workflow_over_equality_domain():
    """Schema -> state -> queries -> safety guard -> answers, over equality."""
    schema = family_schema()
    state = family_state(generations=3)
    domain = EqualityDomain()
    engine = QueryEngine(domain, schema)
    guarded = GuardedEngine(
        engine,
        syntax=ActiveDomainSyntax(schema),
        safety=EqualityRelativeSafety(domain),
    )
    outcome = guarded.answer(more_than_one_son_query(), state, strategy="active-domain")
    assert isinstance(outcome.answer, FiniteAnswer)
    assert len(outcome.answer.relation) == 7  # every non-leaf person has two sons
    grand = guarded.answer(grandfather_query(), state, strategy="active-domain")
    assert len(grand.answer.relation) == 4 + 8  # grandfather/grandson pairs


def test_ordered_workflow_parse_finitize_decide_answer():
    """Text query -> finitization -> Theorem 2.5 decision -> enumeration answer."""
    domain = PresburgerDomain()
    state = numeric_state([4, 9])
    engine = QueryEngine(domain, numeric_schema())
    decider = OrderedRelativeSafety(domain)

    query = parse_formula("exists y. (S(y) & x < y)")
    assert decider.decide(query, state).is_finite is True
    answer = engine.answer_by_enumeration(query, state, max_rows=20, max_candidates=100)
    assert isinstance(answer, FiniteAnswer)
    assert answer.relation.rows == {(n,) for n in range(9)}

    finitized = finitize(query)
    assert FinitizationSyntax().contains(finitized)
    # the finitization answers identically for this (finite) query
    same = engine.answer_by_enumeration(finitized, state, max_rows=20, max_candidates=100)
    assert same.relation.rows == answer.relation.rows


def test_trace_workflow_from_machine_to_negative_results():
    """Machine -> encoding -> traces -> decidable theory -> Theorems 3.1/3.3."""
    machine = unary_eraser()
    machine_word = encode_machine(machine)
    trace_domain = TraceDomain()
    reach = ReachTracesDomain()

    # the decidable theory answers concrete questions about the machine
    sentence = parse_formula(f"exists x. P('{machine_word}', '111', x)")
    assert trace_domain.decide(sentence)

    # Theorem 3.3: relative safety of the reduction query is halting
    query, state = halting_reduction(machine_word, "111")
    verdict = TraceRelativeSafety().semi_decide(query, state, fuel=100)
    assert verdict.is_finite is True

    # Theorem 3.1: the certification procedure certifies this total machine
    enumerator = TotalityEnumerator(reach)
    certificate = enumerator.certify_pair(machine_word, totality_query(machine_word))
    assert certificate is not None
    assert certificate.machine_word == machine_word


def test_successor_and_order_domains_agree_on_common_sentences():
    successor = SuccessorDomain()
    order = NaturalOrderDomain()
    for text in (
        "forall x. ~(succ(x) = x)",
        "exists x. succ(x) = 4",
        "forall x. exists y. y = succ(x)",
        "exists x. succ(succ(x)) = 1",
    ):
        sentence = parse_formula(text)
        assert successor.decide(sentence) == order.decide(sentence), text


def test_print_formula_round_trips_through_every_domain_signature():
    samples = [
        more_than_one_son_query(),
        grandfather_query(),
        parse_formula("exists y. (S(y) & x < y + 2)"),
        totality_query(encode_machine(unary_eraser())),
    ]
    for formula in samples:
        assert parse_formula(print_formula(formula)) == formula
