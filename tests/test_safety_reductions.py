"""Tests for the Theorem 3.1 / 3.3 reductions and the domain-independence / extension helpers."""

import pytest

from repro.domains.equality import EqualityDomain
from repro.domains.nat_order import NaturalOrderDomain
from repro.domains.reach_traces import ReachTracesDomain
from repro.domains.base import TheoryUndecidableError
from repro.experiments.corpora import (
    halting_corpus,
    input_word_sample,
    machine_corpus,
    numeric_schema,
    numeric_state,
)
from repro.logic.analysis import constants_of, free_variables
from repro.logic.parser import parse_formula
from repro.logic.terms import Const, Var
from repro.safety.domain_independence import (
    active_domain_formula,
    check_domain_independence,
    fact_2_1_query,
)
from repro.safety.extension import OrderedExtensionDomain, extension_with_effective_syntax
from repro.safety.reductions import (
    CONSTANT_PLACEHOLDER,
    TotalityEnumerator,
    extract_halting_instance,
    fresh_total_machine_not_in,
    halting_reduction,
    machine_halts_within,
    machine_is_total_on_sample,
    query_answer_when_finite,
    totality_equivalence_sentence,
    totality_query,
    totality_query_with_relation,
)
from repro.turing.encoding import encode_machine
from repro.turing.traces import holds_P


# --- Theorem 3.1 machinery ----------------------------------------------------


def test_totality_query_shapes():
    case = machine_corpus()[1]  # unary_eraser
    query = totality_query(case.word)
    assert free_variables(query) == frozenset({Var("x")})
    assert Const(CONSTANT_PLACEHOLDER) in constants_of(query)
    relational = totality_query_with_relation(case.word)
    assert free_variables(relational) == frozenset({Var("x")})
    with pytest.raises(ValueError):
        totality_query("not-a-machine-word")


def test_totality_equivalence_sentence_is_closed():
    case = machine_corpus()[0]
    sentence = totality_equivalence_sentence(case.word, totality_query(case.word))
    assert free_variables(sentence) == frozenset()
    assert Const(CONSTANT_PLACEHOLDER) not in constants_of(sentence)


def test_totality_enumerator_certifies_exactly_total_corpus_machines():
    enumerator = TotalityEnumerator(ReachTracesDomain())
    corpus = machine_corpus()
    candidates = [totality_query(case.word) for case in corpus if case.total]
    certified = {
        certificate.machine_word
        for certificate in enumerator.enumerate_certified([c.word for c in corpus], candidates)
    }
    for case in corpus:
        assert (case.word in certified) == case.total, case.name


def test_fresh_total_machine_not_in_list():
    words = [case.word for case in machine_corpus()]
    fresh = fresh_total_machine_not_in(words)
    assert encode_machine(fresh) not in words
    assert machine_is_total_on_sample(fresh, input_word_sample(2), fuel=100)


def test_machine_totality_and_halting_helpers():
    corpus = {case.name: case for case in machine_corpus()}
    assert machine_is_total_on_sample(corpus["unary_eraser"].word, input_word_sample(2), 100)
    assert machine_is_total_on_sample(corpus["loop_forever"].word, input_word_sample(1), 50) is False
    assert machine_halts_within(corpus["unary_eraser"].word, "111", 100) is True
    assert machine_halts_within(corpus["loop_forever"].word, "1", 100) is None


# --- Theorem 3.3 machinery ----------------------------------------------------


def test_halting_reduction_round_trip():
    for case, word, _halts in halting_corpus()[:6]:
        query, state = halting_reduction(case.word, word)
        assert extract_halting_instance(query, state) == (case.word, word)
    with pytest.raises(ValueError):
        halting_reduction(machine_corpus()[0].word, "not an input word")


def test_query_answer_when_finite_matches_holds_P():
    case = next(c for c in machine_corpus() if c.name == "unary_eraser")
    answer = query_answer_when_finite(case.word, "11", fuel=100)
    assert answer is not None and len(answer) == 3
    assert all(holds_P(case.word, "11", trace) for trace in answer)
    looper = next(c for c in machine_corpus() if c.name == "loop_forever")
    assert query_answer_when_finite(looper.word, "1", fuel=50) is None


def test_finiteness_of_reduction_query_tracks_halting():
    for case, word, halts in halting_corpus():
        answer = query_answer_when_finite(case.word, word, fuel=300)
        assert (answer is not None) == halts, (case.name, word)


# --- Fact 2.1 helpers and Corollary 2.4 ----------------------------------------


def test_active_domain_formula_defines_active_domain():
    from repro.relational.calculus import evaluate_query

    schema = numeric_schema()
    state = numeric_state([2, 7])
    domain = NaturalOrderDomain()
    formula = active_domain_formula(schema, Var("x"))
    universe = list(range(10))
    answer = evaluate_query(formula, universe, state=state, interpretation=domain)
    assert answer.rows == {(2,), (7,)}


def test_fact_2_1_query_answer_and_non_domain_independence():
    from repro.safety.domain_independence import answer_over_universe

    schema = numeric_schema()
    state = numeric_state([1, 4])
    domain = NaturalOrderDomain()
    query = fact_2_1_query(schema)
    answer = answer_over_universe(query, state, domain, universe=range(0, 9))
    assert sorted(answer.rows) == [(5,)]
    verdict = check_domain_independence(query, state, domain, extra_elements=range(0, 9))
    assert verdict.is_finite is False  # domain independence refuted


def test_ordered_extension_domain():
    base = EqualityDomain("strings")
    extension, syntax = extension_with_effective_syntax(base)
    assert extension.contains("ab")
    assert extension.eval_predicate("<", ("", "a"))       # "" enumerated before "a"
    assert not extension.eval_predicate("<", ("a", ""))
    assert extension.eval_predicate("<=", ("a", "a"))
    assert syntax.contains(syntax.restrict(parse_formula("x = x")))
    with pytest.raises(TheoryUndecidableError):
        extension.decide(parse_formula("exists x. x = x"))
    assert isinstance(extension, OrderedExtensionDomain)
    assert extension.base is base
