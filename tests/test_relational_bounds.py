"""Tests for the shared bound-analysis module (repro.relational.bounds).

Four layers: the interval-set lattice and its sorted merges, the
comparison-literal normalisation, the formula-level per-variable inference
(including quantifier witnesses, negation, and database-atom envelopes), and
the quantifier narrower's bisected candidate generation.
"""

import pytest

from repro.domains.equality import EqualityDomain
from repro.domains.nat_order import NaturalOrderDomain
from repro.experiments.corpora import numeric_state, span_state
from repro.logic.parser import parse_formula
from repro.relational.bounds import (
    BoundAnalysis,
    IntervalSet,
    NarrowingStats,
    QuantifierNarrower,
    comparison_interval,
    domain_is_ordered,
    merge_index_ranges,
    merge_intervals,
)

NAT = NaturalOrderDomain()


# ---------------------------------------------------------------------------
# interval merge and the lattice
# ---------------------------------------------------------------------------


def test_merge_intervals_sorts_fuses_and_drops_empties():
    assert merge_intervals([(5, 7), (1, 2), (3, 3), (9, 8)]) == ((1, 3), (5, 7))
    assert merge_intervals([(None, 4), (2, None)]) == ((None, None),)
    assert merge_intervals([(None, 1), (None, 5)]) == ((None, 5),)
    assert merge_intervals([(3, None), (7, 9), (5, None)]) == ((3, None),)
    assert merge_intervals([]) == ()


def test_merge_intervals_fuses_adjacent_integer_intervals():
    # On an integer carrier [1,3] ∪ [4,6] is exactly [1,6].
    assert merge_intervals([(4, 6), (1, 3)]) == ((1, 6),)
    # ... but a genuine gap stays a gap.
    assert merge_intervals([(5, 6), (1, 3)]) == ((1, 3), (5, 6))


def test_merge_index_ranges_half_open():
    assert merge_index_ranges([(4, 6), (0, 2), (5, 9), (2, 3)]) == [(0, 3), (4, 9)]
    assert merge_index_ranges([(3, 3), (7, 5)]) == []


def test_interval_set_lattice_operations():
    evens = IntervalSet.point(2).union(IntervalSet.point(4))
    assert evens.intersect(IntervalSet.at_least(3)) == IntervalSet.point(4)
    assert IntervalSet.top().intersect(evens) == evens
    assert IntervalSet.empty().union(evens) == evens
    assert IntervalSet.between(5, 3).is_empty
    assert IntervalSet.between(None, 3).upper == 3
    assert not IntervalSet.at_least(0).bounded
    assert IntervalSet.between(1, 4).bounded


def test_interval_set_complement_round_trips():
    original = IntervalSet(((None, 3), (5, 9)))
    complement = original.complement()
    assert complement == IntervalSet(((4, 4), (10, None)))
    assert complement.complement() == original
    assert IntervalSet.top().complement().is_empty
    assert IntervalSet.empty().complement().is_top


def test_interval_set_values_and_size():
    pieces = IntervalSet(((1, 3), (7, 7)))
    assert list(pieces.values()) == [1, 2, 3, 7]
    assert pieces.size() == 4
    with pytest.raises(ValueError):
        IntervalSet.at_least(3).size()


def test_comparison_interval_normalisation():
    assert comparison_interval("<", 7) == IntervalSet.at_most(6)
    assert comparison_interval("<=", 7) == IntervalSet.at_most(7)
    # the variable on the right flips the predicate: 7 < x
    assert comparison_interval("<", 7, var_on_left=False) == IntervalSet.at_least(8)
    # negation complements it: ¬(x < 7) ⟺ x >= 7
    assert comparison_interval("<", 7, negated=True) == IntervalSet.at_least(7)


# ---------------------------------------------------------------------------
# formula-level inference
# ---------------------------------------------------------------------------


def _infer(text, var, resolve=None, state=None):
    return BoundAnalysis(state).intervals(parse_formula(text), var, resolve)


def test_inference_reads_constant_comparisons():
    assert _infer("x < 7 & 2 <= x", "x") == IntervalSet.between(2, 6)
    assert _infer("x < 7 | x > 20", "x") == IntervalSet(((None, 6), (21, None)))
    assert _infer("~(x < 7)", "x") == IntervalSet.at_least(7)
    assert _infer("x = 5", "x") == IntervalSet.point(5)
    assert _infer("~(x = 5)", "x") == IntervalSet.point(5).complement()


def test_inference_resolves_environment_variables():
    assert _infer("y < x", "y", resolve={"x": 9}) == IntervalSet.at_most(8)
    # an unresolved other side yields no bound
    assert _infer("y < x", "y").is_top


def test_inference_folds_resolved_literals_not_involving_the_variable():
    # 5 < 3 is false, so the conjunction admits no y at all.
    assert _infer("y < 9 & 5 < 3", "y").is_empty
    assert _infer("y < 9 & 3 < 5", "y") == IntervalSet.at_most(8)


def test_inference_propagates_quantifier_witness_envelopes():
    # ∃z (z <= 9 ∧ x < z) implies x < 9, i.e. x <= 8.
    assert _infer("exists z. (z <= 9 & x < z)", "x") == IntervalSet.at_most(8)
    # the witness bound also flows through equalities
    assert _infer("exists z. (z = 4 & x < z)", "x") == IntervalSet.at_most(3)


def test_inference_uses_database_column_envelopes():
    state = numeric_state([4, 9, 15])
    got = _infer("exists y. (S(y) & x < y)", "x", state=state)
    assert got == IntervalSet.at_most(14)
    # an empty relation admits no witness at all
    empty = _infer("exists y. (S(y) & x < y)", "x", state=numeric_state([]))
    assert empty.is_empty


def test_inference_is_conservative_where_it_must_be():
    assert _infer("S(x)", "x").is_top  # no state: no envelope
    assert _infer("~S(x)", "x", state=numeric_state([1])).is_top
    assert _infer("x < x", "x").is_empty
    assert _infer("x <= x", "x").is_top
    state = span_state([], [(1, 9)])
    got = _infer("exists y. exists z. (R(y, z) & y < x & x < z)", "x", state=state)
    assert got == IntervalSet.between(2, 8)


def test_inference_shadowed_variable_is_not_constrained():
    # the inner ∃x rebinds x, so the outer x gains no bound from x < 5
    assert _infer("exists x. (x < 5)", "x").is_top


def test_forall_bodies_require_a_nonempty_universe():
    nonempty = BoundAnalysis(assume_nonempty=True)
    vacuous = BoundAnalysis(assume_nonempty=False)
    formula = parse_formula("forall y. (x < 7)")
    assert nonempty.intervals(formula, "x") == IntervalSet.at_most(6)
    assert vacuous.intervals(formula, "x").is_top


def test_free_variable_intervals_propagate_across_variables():
    analysis = BoundAnalysis()
    formula = parse_formula("x < y & y < 7 & 0 <= x")
    got = analysis.free_variable_intervals(formula, ["x", "y"])
    assert got["y"].upper == 6
    assert got["x"] == IntervalSet.between(0, 5)


# ---------------------------------------------------------------------------
# the quantifier narrower
# ---------------------------------------------------------------------------


def test_narrower_candidates_bisect_the_sorted_universe():
    narrower = QuantifierNarrower([13, 1, 9, 5])
    body = parse_formula("S(y) & y < x")
    assert narrower.candidates(body, "y", {"x": 9}) == [1, 5]
    assert narrower.candidates(body, "y", {"x": 0}) == []
    unconstrained = parse_formula("S(y)")
    assert narrower.candidates(unconstrained, "y", {}) == [1, 5, 9, 13]


def test_narrower_records_stats():
    stats = NarrowingStats()
    narrower = QuantifierNarrower([1, 5, 9], stats=stats)
    narrower.candidates(parse_formula("y < x"), "y", {"x": 6})
    assert stats.enabled and stats.ranges == 1 and stats.narrowed == 1
    assert (stats.candidates, stats.skipped) == (2, 1)
    assert "narrowing" in stats.describe()


def test_narrower_construction_is_gated():
    assert QuantifierNarrower.for_universe([1, 2], NAT) is not None
    # unordered carrier: narrowing is not sound
    assert QuantifierNarrower.for_universe([1, 2], EqualityDomain()) is None
    # non-integer universe: narrowing is not possible
    assert QuantifierNarrower.for_universe(["a", "b"], NAT) is None
    assert domain_is_ordered(NAT) and not domain_is_ordered(EqualityDomain())


def test_narrower_ignores_shadowing_outer_bindings():
    # T(x) ∧ ∃x (S(x) ∧ x < 3): at the inner quantifier the environment
    # still binds the *outer* x; its value must not constant-fold the inner
    # x's literals (x < 3 would become 10 < 3 and prune every candidate).
    narrower = QuantifierNarrower([1, 10])
    body = parse_formula("S(x) & x < 3")
    assert narrower.candidates(body, "x", {"x": 10}) == [1]
    analysis = BoundAnalysis()
    assert analysis.intervals(
        parse_formula("x < 3"), "x", {"x": 10}
    ) == IntervalSet.at_most(2)


def test_narrowed_walker_handles_shadowed_quantifiers():
    # End-to-end regression for the same shadowing shape.
    from repro.relational.calculus import evaluate_query_active_domain
    from repro.relational.schema import DatabaseSchema, RelationSchema
    from repro.relational.state import DatabaseState

    schema = DatabaseSchema((
        RelationSchema("S", 1, ("v",)), RelationSchema("T", 1, ("v",)),
    ))
    state = DatabaseState(schema, {"S": [(1,), (10,)], "T": [(10,)]})
    query = parse_formula("T(x) & exists x. (S(x) & x < 3)")
    narrowed = evaluate_query_active_domain(query, state, interpretation=NAT)
    full = evaluate_query_active_domain(
        query, state, interpretation=NAT, narrow=False
    )
    assert narrowed.rows == full.rows == {(10,)}


def test_registry_capability_lookup():
    from repro.relational.bounds import registry_capability

    assert registry_capability(NAT, "ordered_carrier")
    assert registry_capability(NAT, "supports_compiled_algebra")
    assert not registry_capability(EqualityDomain(), "ordered_carrier")
    assert not registry_capability(object(), "ordered_carrier")


def test_narrower_empty_universe():
    narrower = QuantifierNarrower([])
    assert narrower.candidates(parse_formula("y < 5"), "y", {}) == []
    assert narrower.universe_size == 0
