"""Integration tests: every experiment reproduces its paper claim on its corpus."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, render_result, render_table
from repro.experiments.report import ExperimentResult


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_experiment_reproduces_claim(experiment_id):
    result = ALL_EXPERIMENTS[experiment_id]()
    assert isinstance(result, ExperimentResult)
    assert result.rows, f"{experiment_id} produced no rows"
    failing = [row for row in result.rows if not row[-1]]
    assert not failing, f"{experiment_id} rows inconsistent with the paper: {failing}"
    assert "MISMATCH" not in result.conclusion


def test_render_table_and_result():
    result = ExperimentResult("X", "claim", ("a", "b"))
    result.add_row(1, True)
    result.add_row(22, False)
    text = render_table(result.headers, result.rows)
    assert "a" in text and "22" in text
    result.conclusion = "done"
    full = render_result(result)
    assert "Claim: claim" in full and "done" in full
    assert not result.all_rows_consistent


def test_experiment_registry_is_complete():
    assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 13)}
