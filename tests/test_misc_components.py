"""Coverage for the smaller supporting components: signatures, answers, reports, corpora."""

import pytest

from repro.domains.signature import Signature
from repro.engine.answers import FiniteAnswer, InfiniteAnswer, UnknownAnswer
from repro.experiments.corpora import (
    family_state,
    halting_corpus,
    machine_corpus,
    numeric_state,
    ordered_query_corpus,
    presburger_sentences,
    successor_query_corpus,
)
from repro.experiments.report import ExperimentResult, render_result, render_table
from repro.relational.state import Relation
from repro.safety.classes import FinitenessStatus, SafetyVerdict
from repro.turing.machine import run_machine
from repro.turing.words import is_input_word, is_machine_word, pad_to_length, words_over


def test_signature_merge_and_lookup():
    base = Signature(predicates={"<": 2}, functions={"succ": 1})
    other = Signature(predicates={"P": 3})
    merged = base.merge(other)
    assert merged.has_predicate("<") and merged.has_predicate("P")
    assert merged.predicate_arity("P") == 3
    assert merged.function_arity("succ") == 1
    with pytest.raises(ValueError):
        base.merge(Signature(predicates={"<": 3}))
    with pytest.raises(ValueError):
        Signature(predicates={"f": 1}, functions={"f": 1})
    assert "succ/1" in str(base)


def test_safety_verdict_constructors():
    assert SafetyVerdict.finite("m").is_finite is True
    assert SafetyVerdict.infinite("m").is_finite is False
    assert SafetyVerdict.unknown("m").is_finite is None
    assert FinitenessStatus.FINITE.is_finite is True
    assert FinitenessStatus.UNKNOWN.is_finite is None


def test_answer_objects():
    relation = Relation(1, [(1,), (2,)])
    finite = FiniteAnswer(relation)
    assert finite.is_finite is True and len(finite) == 2
    infinite = InfiniteAnswer(relation, reason="demo")
    assert infinite.is_finite is False
    unknown = UnknownAnswer(relation, reason="fuel")
    assert unknown.is_finite is None


def test_report_rendering_handles_empty_and_nonempty_tables():
    empty = ExperimentResult("EX", "claim", ("a", "b"))
    assert "a" in render_table(empty.headers, empty.rows)
    empty.add_row("value", True)
    rendered = render_result(empty)
    assert "EX" in rendered and "value" in rendered
    assert empty.all_rows_consistent


def test_corpora_ground_truth_is_self_consistent():
    # totality flags agree with bounded simulation on the listed inputs
    for case in machine_corpus():
        for word in case.halts_on:
            assert run_machine(case.machine, word, fuel=500).halted, (case.name, word)
        for word in case.diverges_on:
            assert not run_machine(case.machine, word, fuel=500).halted, (case.name, word)
        assert is_machine_word(case.word)
    assert any(not case.total for case in machine_corpus())
    assert any(case.total for case in machine_corpus())
    # every halting-corpus input word is well-formed
    assert all(is_input_word(word) for _case, word, _h in halting_corpus())


def test_corpora_query_lists_are_nonempty_and_named_uniquely():
    for corpus in (ordered_query_corpus(), successor_query_corpus(), presburger_sentences()):
        names = [name for name, *_rest in corpus]
        assert len(names) == len(set(names))
        assert len(names) >= 5


def test_corpora_states():
    assert family_state(generations=2).total_rows() == 6
    assert numeric_state([1, 2, 3]).total_rows() == 3


def test_word_utilities():
    assert pad_to_length("1", 3) == "1&&"
    with pytest.raises(ValueError):
        pad_to_length("111", 2)
    words = list(words_over(("1", "&"), 2))
    assert "" in words and "1&" in words and len(words) == 1 + 2 + 4
