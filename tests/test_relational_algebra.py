"""Tests for the relational algebra engine, including algebraic identities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational.algebra import (
    BaseRelation,
    Difference,
    LiteralRelation,
    NaturalJoin,
    Product,
    Projection,
    Rename,
    Selection,
    Union,
    evaluate_algebra,
)
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.state import DatabaseState

SCHEMA = DatabaseSchema((
    RelationSchema("F", 2, ("father", "son")),
    RelationSchema("P", 1, ("person",)),
))


def make_state():
    return DatabaseState(SCHEMA, {
        "F": [(1, 2), (1, 3), (2, 4)],
        "P": [(1,), (2,), (3,), (4,)],
    })


def test_base_relation_and_selection():
    state = make_state()
    result = evaluate_algebra(Selection(BaseRelation("F"), lambda row: row["father"] == 1), state)
    assert result.relation.rows == {(1, 2), (1, 3)}


def test_projection_removes_duplicates():
    state = make_state()
    result = evaluate_algebra(Projection(BaseRelation("F"), ("father",)), state)
    assert result.relation.rows == {(1,), (2,)}
    with pytest.raises(KeyError):
        evaluate_algebra(Projection(BaseRelation("F"), ("nope",)), state)


def test_natural_join_computes_grandfathers():
    state = make_state()
    grand = NaturalJoin(
        Rename(BaseRelation("F"), (("son", "middle"),)),
        Rename(BaseRelation("F"), (("father", "middle"), ("son", "grandson"))),
    )
    result = evaluate_algebra(grand, state)
    assert ("father", "middle", "grandson") == result.attributes
    assert {(row[0], row[2]) for row in result.relation.rows} == {(1, 4)}


def test_product_requires_disjoint_attributes():
    state = make_state()
    with pytest.raises(ValueError):
        evaluate_algebra(Product(BaseRelation("F"), BaseRelation("F")), state)
    result = evaluate_algebra(
        Product(BaseRelation("P"), Rename(BaseRelation("F"), (("father", "f"), ("son", "s")))),
        state,
    )
    assert len(result.relation) == 4 * 3


def test_union_difference_compatibility():
    state = make_state()
    union = evaluate_algebra(Union(BaseRelation("P"), BaseRelation("P")), state)
    assert len(union.relation) == 4
    diff = evaluate_algebra(
        Difference(BaseRelation("P"), LiteralRelation(("person",), ((1,), (9,)))), state
    )
    assert diff.relation.rows == {(2,), (3,), (4,)}
    with pytest.raises(ValueError):
        evaluate_algebra(Union(BaseRelation("P"), BaseRelation("F")), state)


def test_rename_rejects_duplicates():
    state = make_state()
    with pytest.raises(ValueError):
        evaluate_algebra(Rename(BaseRelation("F"), (("father", "son"),)), state)


# --- identities checked with hypothesis --------------------------------------

rows_strategy = st.sets(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=8
)


@settings(max_examples=60, deadline=None)
@given(rows_strategy, rows_strategy)
def test_union_is_commutative_and_idempotent(rows_a, rows_b):
    state = DatabaseState(SCHEMA, {"F": rows_a})
    a = LiteralRelation(("father", "son"), tuple(rows_a))
    b = LiteralRelation(("father", "son"), tuple(rows_b))
    left = evaluate_algebra(Union(a, b), state).relation.rows
    right = evaluate_algebra(Union(b, a), state).relation.rows
    assert left == right == rows_a | rows_b
    assert evaluate_algebra(Union(a, a), state).relation.rows == rows_a


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_selection_then_projection_commutes_with_projection_of_selection(rows):
    state = DatabaseState(SCHEMA, {"F": rows})
    base = LiteralRelation(("father", "son"), tuple(rows))
    predicate = lambda row: row["father"] <= 2
    one = evaluate_algebra(Projection(Selection(base, predicate), ("father",)), state)
    expected = {(f,) for (f, s) in rows if f <= 2}
    assert one.relation.rows == expected


@settings(max_examples=60, deadline=None)
@given(rows_strategy, rows_strategy)
def test_difference_subset_of_left(rows_a, rows_b):
    state = DatabaseState(SCHEMA, {"F": rows_a})
    a = LiteralRelation(("father", "son"), tuple(rows_a))
    b = LiteralRelation(("father", "son"), tuple(rows_b))
    result = evaluate_algebra(Difference(a, b), state).relation.rows
    assert result == rows_a - rows_b
