"""Tests for substitution, constant replacement, and bound-variable renaming."""

import pytest

from repro.logic.analysis import bound_variables, free_variables
from repro.logic.builders import atom, conj, eq, exists, forall, neg, var
from repro.logic.formulas import Exists
from repro.logic.substitution import (
    fresh_variable,
    fresh_variables,
    rename_bound_variables,
    replace_constant_with_variable,
    substitute,
    substitute_constant,
    substitute_term,
)
from repro.logic.terms import Apply, Const, Var


def test_substitute_term():
    term = Apply("f", (Var("x"), Const(1)))
    assert substitute_term(term, {Var("x"): Const(7)}) == Apply("f", (Const(7), Const(1)))
    assert substitute_term(Var("y"), {Var("x"): Const(7)}) == Var("y")


def test_substitute_free_occurrences_only():
    formula = conj(atom("P", var("x")), exists("x", atom("Q", var("x"))))
    result = substitute(formula, {Var("x"): Const(5)})
    assert result == conj(atom("P", Const(5)), exists("x", atom("Q", var("x"))))


def test_substitute_capture_avoidance():
    # substituting y for x under exists y must rename the bound y
    formula = exists("y", atom("R", var("x"), var("y")))
    result = substitute(formula, {Var("x"): Var("y")})
    assert isinstance(result, Exists)
    assert result.var != "y"
    assert Var("y") in free_variables(result)


def test_substitute_noop_when_variable_absent():
    formula = atom("P", var("x"))
    assert substitute(formula, {Var("z"): Const(1)}) == formula


def test_fresh_variable_avoids_used():
    used = [Var("v"), Var("v_0"), Var("x")]
    fresh = fresh_variable(used, stem="v")
    assert fresh not in used
    many = fresh_variables(3, used, stem="x")
    assert len(set(many)) == 3
    assert all(v not in used for v in many)


def test_substitute_constant():
    formula = conj(atom("P", Const("c"), var("x")), eq(var("x"), Const("c")))
    replaced = substitute_constant(formula, Const("c"), Var("z"))
    assert replaced == conj(atom("P", var("z"), var("x")), eq(var("x"), var("z")))


def test_replace_constant_with_variable_requires_fresh_variable():
    formula = atom("P", Const("c"), var("x"))
    replaced = replace_constant_with_variable(formula, Const("c"), Var("z"))
    assert Var("z") in free_variables(replaced)
    with pytest.raises(ValueError):
        replace_constant_with_variable(formula, Const("c"), Var("x"))


def test_rename_bound_variables_makes_names_unique():
    formula = conj(
        exists("x", atom("P", var("x"))),
        exists("x", atom("Q", var("x"))),
        atom("R", var("x")),
    )
    renamed = rename_bound_variables(formula)
    bound = bound_variables(renamed)
    assert len(bound) == 2
    assert Var("x") in free_variables(renamed)
    assert Var("x") not in bound
