"""Tests for the Turing machine simulator and tape."""

import pytest

from repro.turing.builders import (
    halt_immediately,
    loop_forever,
    move_right_forever,
    seek_blank_then_halt,
    unary_eraser,
    unary_successor,
    unary_writer,
)
from repro.turing.machine import Configuration, Transition, TuringMachine, configurations, run_machine
from repro.turing.tape import BLANK, MARK, Tape


def test_tape_read_write_extent():
    tape = Tape.from_word("1&1")
    assert tape.read(0) == MARK and tape.read(1) == BLANK and tape.read(2) == MARK
    assert tape.read(-5) == BLANK
    assert tape.extent() == (0, 2)
    tape.write(5, MARK)
    assert tape.extent() == (0, 5)
    tape.write(5, BLANK)
    assert tape.extent() == (0, 2)
    with pytest.raises(ValueError):
        tape.write(0, "x")
    with pytest.raises(ValueError):
        Tape.from_word("abc")


def test_tape_result_word():
    assert Tape.from_word("").result_word() == ""
    assert Tape.from_word("&&&").result_word() == ""
    assert Tape.from_word("11").result_word() == "11"
    assert Tape.from_word("&11&111").result_word() == "11"


def test_transition_validation():
    with pytest.raises(ValueError):
        Transition(0, MARK, "R")
    with pytest.raises(ValueError):
        Transition(1, "x", "R")
    with pytest.raises(ValueError):
        Transition(1, MARK, "UP")


def test_machine_states_and_lookup():
    machine = unary_eraser()
    assert 1 in machine.states
    assert machine.transition_for(1, MARK) is not None
    assert machine.transition_for(1, BLANK) is None
    assert len(machine) == 1


def test_initial_configuration_and_step():
    config = Configuration.initial("11")
    assert config.state == 1 and config.head == 0
    machine = unary_eraser()
    assert config.step(machine)
    assert config.head == 1
    assert config.tape.read(0) == BLANK
    with pytest.raises(ValueError):
        Configuration.initial("1*1")


def test_run_machine_halting_and_output():
    result = run_machine(unary_eraser(), "111", fuel=100)
    assert result.halted and result.steps == 3 and result.output == ""
    result = run_machine(unary_successor(), "11", fuel=100)
    assert result.halted and result.output == "111"
    result = run_machine(unary_writer(3), "", fuel=100)
    assert result.halted and result.output == "111"
    result = run_machine(halt_immediately(), "1&1", fuel=10)
    assert result.halted and result.steps == 0 and result.output == "1"


def test_run_machine_fuel_exhaustion():
    result = run_machine(loop_forever(), "1", fuel=25)
    assert not result.halted and result.exhausted and result.output is None and result.steps == 25
    result = run_machine(move_right_forever(), "", fuel=10)
    assert not result.halted
    with pytest.raises(ValueError):
        run_machine(loop_forever(), "1", fuel=-1)


def test_run_machine_zero_fuel_detects_immediate_halt():
    result = run_machine(halt_immediately(), "1", fuel=0)
    assert result.halted and result.steps == 0


def test_configurations_iterator():
    machine = seek_blank_then_halt()
    snapshots = list(configurations(machine, "111", limit=10))
    assert len(snapshots) == 4  # initial + three steps to reach the blank
    assert snapshots[0].head == 0 and snapshots[-1].head == 3
    limited = list(configurations(machine, "111", limit=2))
    assert len(limited) == 2


def test_machine_from_rules_tuple_form():
    machine = TuringMachine.from_rules({(1, MARK): (2, BLANK, "R")})
    transition = machine.transition_for(1, MARK)
    assert transition == Transition(2, BLANK, "R")
