"""Tests for the unified Session API: connect → compile → plan → execute."""

import pytest

import repro
from repro import Budget, connect
from repro.api import (
    ActiveDomainPlan,
    EnumerationPlan,
    GuardedPlan,
    PlanError,
    Planner,
    Session,
    SessionError,
)
from repro.domains import EqualityDomain, PresburgerDomain
from repro.domains.registry import (
    UnknownDomainError,
    available_domains,
    domain_aliases,
    get_domain,
    get_entry,
    resolve_domain_name,
)
from repro.engine import QueryEngine
from repro.engine.answers import Answer, FiniteAnswer, InfiniteAnswer, UnknownAnswer
from repro.engine.plans import plan_for_strategy
from repro.experiments.corpora import family_schema, family_state, numeric_schema
from repro.logic.builders import atom, var
from repro.relational.schema import DatabaseSchema, RelationSchema


# ---------------------------------------------------------------------------
# Domain registry
# ---------------------------------------------------------------------------


def test_registry_lists_all_paper_domains():
    names = available_domains()
    for expected in (
        "equality",
        "naturals_with_order",
        "presburger_naturals",
        "naturals_with_successor",
        "traces",
        "reach_traces",
    ):
        assert expected in names


@pytest.mark.parametrize(
    "alias, canonical",
    [
        ("eq", "equality"),
        ("nat<", "naturals_with_order"),
        ("presburger", "presburger_naturals"),
        ("succ", "naturals_with_successor"),
        ("traces", "traces"),
        ("reach", "reach_traces"),
        ("EQ", "equality"),  # aliases are case-insensitive
    ],
)
def test_registry_aliases(alias, canonical):
    assert resolve_domain_name(alias) == canonical
    assert get_domain(alias).name == canonical or canonical in get_domain(alias).name


def test_registry_miss_lists_known_domains():
    with pytest.raises(UnknownDomainError) as excinfo:
        get_domain("zfc")
    message = str(excinfo.value)
    assert "zfc" in message
    assert "presburger_naturals" in message and "equality" in message


def test_registry_alias_table_is_consistent():
    aliases = domain_aliases()
    for alias, canonical in aliases.items():
        assert resolve_domain_name(alias) == canonical
        assert canonical in available_domains()


def test_registry_entries_carry_paper_guard_metadata():
    assert get_entry("eq").safety_factory is not None
    assert get_entry("succ").syntax_factory is not None
    # Theorems 3.1 / 3.3: the trace domain has neither guard.
    assert get_entry("traces").safety_factory is None
    assert get_entry("traces").syntax_factory is None


# ---------------------------------------------------------------------------
# The Answer hierarchy
# ---------------------------------------------------------------------------


def test_answer_is_a_real_abc():
    with pytest.raises(TypeError):
        Answer()  # abstract
    for cls in (FiniteAnswer, InfiniteAnswer, UnknownAnswer):
        assert issubclass(cls, Answer)


def test_answers_share_the_uniform_protocol():
    from repro.relational.state import Relation

    finite = FiniteAnswer(Relation(1, [(1,), (2,)]), method="enumeration")
    infinite = InfiniteAnswer(Relation(1, [(0,)]), reason="guard", method="m")
    unknown = UnknownAnswer(Relation(1, []), reason="budget", method="m")
    assert finite.is_finite is True and finite.rows() == ((1,), (2,))
    assert infinite.is_finite is False and infinite.rows() == ((0,),)
    assert unknown.is_finite is None and unknown.rows() == ()
    for answer in (finite, infinite, unknown):
        assert isinstance(answer, Answer)
        assert answer.explain()
        assert list(answer) == list(answer.rows())
        assert answer.row_count == len(answer.rows())


# ---------------------------------------------------------------------------
# connect → query → answer across every registered domain
# ---------------------------------------------------------------------------

_UNARY_S = DatabaseSchema((RelationSchema("S", 1),))

# domain name -> (query text, schema, state rows, expected rows)
DOMAIN_CASES = {
    "equality": ("S(x)", _UNARY_S, {"S": [(1,), (2,)]}, ((1,), (2,))),
    "naturals_with_order": ("x < 3", None, None, ((0,), (1,), (2,))),
    "presburger_naturals": ("x < 3", None, None, ((0,), (1,), (2,))),
    "presburger_integers": ("0 <= x & x < 2", None, None, ((0,), (1,))),
    "naturals_with_successor": ("x = succ(0)", None, None, ((1,),)),
    "traces": ("x = '1'", None, None, (("1",),)),
    "reach_traces": ("x = '1'", None, None, (("1",),)),
    "rationals_with_order": ("S(x)", _UNARY_S, {"S": [(1,), (2,)]}, ((1,), (2,))),
    "integer_differences": ("0 <= x & x < 2", None, None, ((0,), (1,))),
    "cyclic_successor": ("x = succ(0)", None, None, ((1,),)),
    "shortlex_strings": ("x < 'a'", None, None, (("",),)),
}


def test_every_registered_domain_has_an_end_to_end_case():
    assert set(DOMAIN_CASES) == set(available_domains())


@pytest.mark.parametrize("name", sorted(DOMAIN_CASES))
def test_connect_query_answer_end_to_end(name):
    text, schema, rows, expected = DOMAIN_CASES[name]
    session = connect(name, schema)
    state = session.state(rows) if rows else None
    result = session.run(text, state, budget=Budget(max_rows=10, max_candidates=200))
    assert isinstance(result.answer, Answer)
    assert isinstance(result.answer, FiniteAnswer)
    assert result.answer.rows() == expected
    assert result.answer.explain()
    assert result.plan.explain()
    assert result.elapsed >= 0.0


# ---------------------------------------------------------------------------
# Pipeline stages
# ---------------------------------------------------------------------------


def test_compile_accepts_text_and_formulas():
    session = connect("eq", _UNARY_S)
    from_text = session.compile("S(x)")
    from_formula = session.compile(atom("S", var("x")))
    assert from_text == from_formula


def test_compile_rejects_unknown_predicates_helpfully():
    session = connect("eq", _UNARY_S)
    with pytest.raises(SessionError) as excinfo:
        session.compile("Q(x)")
    assert "Q" in str(excinfo.value) and "S" in str(excinfo.value)


def test_compile_rejects_unknown_functions_and_bad_text():
    session = connect("eq", _UNARY_S)
    with pytest.raises(SessionError):
        session.compile("S(succ(x))")  # equality domain has no functions
    with pytest.raises(SessionError):
        session.compile("S(x) &&& S(y)")
    with pytest.raises(SessionError):
        session.compile(42)


def test_compile_rejects_arity_mismatches():
    session = connect("eq", _UNARY_S)
    with pytest.raises(SessionError) as excinfo:
        session.compile("S(x, y)")
    assert "expects 1 argument" in str(excinfo.value)
    numbers = connect("presburger")
    with pytest.raises(SessionError):
        numbers.compile(atom("<", var("x")))  # the order predicate is binary


def test_analyze_reports_safety_verdict_and_decidability():
    session = connect("presburger", _UNARY_S)
    state = session.state(S=[(3,)])
    finite = session.analyze("S(x)", state)
    assert finite.theory_decidable
    assert finite.free_variables == ("x",)
    assert finite.database_predicates == ("S",)
    assert finite.verdict is not None and finite.verdict.is_finite is True
    infinite = session.analyze("~S(x)", state)
    assert infinite.verdict is not None and infinite.verdict.is_finite is False
    assert "x" in finite.explain()


def test_plan_objects_replace_strategy_strings():
    session = connect("presburger")
    auto = session.plan()
    assert isinstance(auto, GuardedPlan)
    assert isinstance(auto.inner, EnumerationPlan)
    forced = session.plan("active-domain")
    assert isinstance(forced, ActiveDomainPlan)
    assert "active-domain" in forced.explain()
    with pytest.raises(PlanError):
        session.plan("mystery")


def test_planner_guarded_strategy_requires_a_guard():
    planner = Planner(get_domain("traces"))
    with pytest.raises(PlanError):
        planner.plan("guarded")
    # The trace domain session still answers via bare strategies.
    assert isinstance(connect("traces").plan(), EnumerationPlan)


def test_execute_runs_a_prebuilt_plan():
    session = connect("presburger")
    plan = session.plan("enumeration", budget=Budget(max_rows=5, max_candidates=50))
    answer = session.execute(plan, "x < 2")
    assert answer.rows() == ((0,), (1,))


# ---------------------------------------------------------------------------
# Budgets
# ---------------------------------------------------------------------------


def test_budget_exhaustion_returns_unknown_answer():
    session = connect("presburger")
    answer = session.query(
        "3 < x", strategy="enumeration", budget=Budget(max_rows=4, max_candidates=50)
    )
    assert isinstance(answer, UnknownAnswer)
    assert answer.is_finite is None
    assert answer.rows() == ((4,), (5,), (6,), (7,))
    assert "budget" in answer.explain()


def test_time_budget_exhaustion_returns_unknown_answer():
    session = connect("presburger")
    answer = session.query(
        "x >= 0", strategy="enumeration", budget=Budget(time_limit=0.0)
    )
    assert isinstance(answer, UnknownAnswer)
    assert "time budget" in answer.reason


def test_budget_validation_and_describe():
    with pytest.raises(ValueError):
        Budget(max_rows=-1)
    with pytest.raises(ValueError):
        Budget(time_limit=-0.5)
    budget = Budget(max_rows=7, time_limit=1.5)
    assert "max_rows=7" in budget.describe() and "1.5" in budget.describe()
    assert budget.replace(max_rows=9).max_rows == 9


# ---------------------------------------------------------------------------
# Guarded rejection of unsafe queries
# ---------------------------------------------------------------------------


def test_unsafe_query_is_rejected_by_default_guard():
    session = connect("eq", family_schema())
    state = family_state(generations=2)
    result = session.run("~F(x, y)", state)
    assert isinstance(result.answer, InfiniteAnswer)
    assert result.verdict is not None and result.verdict.is_finite is False
    assert "rejected" in result.answer.reason
    assert "safety verdict" in result.explain()


def test_guard_can_be_disabled():
    session = connect("presburger", guard=False)
    assert session.safety is None
    answer = session.query("3 < x", budget=Budget(max_rows=3, max_candidates=50))
    assert isinstance(answer, UnknownAnswer)  # no guard: enumeration runs out


def test_guard_false_conflicts_with_explicit_guard_arguments():
    with pytest.raises(SessionError):
        connect("eq", family_schema(), guard=False, restrict=True)
    from repro.safety.relative_safety import EqualityRelativeSafety

    with pytest.raises(SessionError):
        connect("eq", guard=False, safety=EqualityRelativeSafety(EqualityDomain()))


def test_undecidable_safety_decider_degrades_instead_of_raising():
    from repro.safety.relative_safety import TraceRelativeSafety

    # An arbitrary trace query is outside the halting-reduction shape, so the
    # decider can neither decide nor semi-decide; the guard must degrade to an
    # UNKNOWN verdict and evaluate anyway rather than raise.
    session = connect("traces", safety=TraceRelativeSafety())
    result = session.run("x = '1'", budget=Budget(max_rows=5, max_candidates=50))
    assert isinstance(result.answer, FiniteAnswer)
    assert result.verdict is not None and result.verdict.is_finite is None


def test_budget_fuel_bounds_trace_safety_semi_decision():
    from repro.safety.reductions import halting_reduction
    from repro.safety.relative_safety import TraceRelativeSafety
    from repro.turing.builders import unary_eraser

    query, state = halting_reduction(unary_eraser(), "11")
    session = connect("traces", state.schema, safety=TraceRelativeSafety())
    # With generous fuel the bounded simulation observes the halt: FINITE.
    generous = session.analyze(query, state)
    assert generous.verdict is not None and generous.verdict.is_finite is True
    # With fuel=0 the simulation cannot finish: the verdict stays UNKNOWN.
    starved = connect(
        "traces", state.schema, safety=TraceRelativeSafety(), budget=Budget(fuel=0)
    ).analyze(query, state)
    assert starved.verdict is not None and starved.verdict.is_finite is None


def test_restrict_installs_the_effective_syntax():
    session = connect("eq", family_schema(), restrict=True)
    state = family_state(generations=2)
    result = session.run("~F(x, y)", state, strategy="auto")
    assert result.rewritten
    assert isinstance(result.answer, FiniteAnswer)
    with pytest.raises(SessionError):
        connect("traces", restrict=True)  # Theorem 3.1: no effective syntax


# ---------------------------------------------------------------------------
# Sessions over explicit Domain instances, and the legacy shims
# ---------------------------------------------------------------------------


def test_connect_accepts_domain_instances():
    session = connect(PresburgerDomain(), _UNARY_S)
    assert session.safety is not None  # defaults found via the registry name
    state = session.state(S=[(1,)])
    assert session.query("S(x)", state).rows() == ((1,),)


def test_session_repr_and_explain():
    session = connect("eq", _UNARY_S)
    assert "equality" in repr(session)
    text = session.explain("S(x)")
    assert "strategy" in text and "free variables" in text


def test_legacy_query_engine_accepts_budget_objects():
    engine = QueryEngine(PresburgerDomain(), numeric_schema())
    from repro.experiments.corpora import numeric_state

    state = numeric_state([2, 4])
    query = atom("S", var("x"))
    via_budget = engine.answer(query, state, budget=Budget(max_rows=10, max_candidates=50))
    via_kwargs = engine.answer(query, state, max_rows=10, max_candidates=50)
    assert via_budget.rows() == via_kwargs.rows() == ((2,), (4,))
    plan = engine.plan("auto")
    assert isinstance(plan, EnumerationPlan) and plan.explain()


def test_legacy_guarded_engine_budget_wins_over_legacy_kwargs():
    from repro.engine import GuardedEngine
    from repro.experiments.corpora import numeric_state

    engine = QueryEngine(PresburgerDomain(), numeric_schema())
    guarded = GuardedEngine(engine)
    state = numeric_state([1])
    # budget alongside the legacy keywords must not raise; budget wins.
    result = guarded.answer(
        atom("<", var("x"), 2),
        state,
        strategy="enumeration",
        budget=Budget(max_rows=1, max_candidates=50),
        max_rows=7,
    )
    assert isinstance(result.answer, UnknownAnswer)
    assert len(result.answer.rows()) == 1


def test_plan_for_strategy_rejects_unknown_names():
    with pytest.raises(ValueError):
        plan_for_strategy("mystery", EqualityDomain())
