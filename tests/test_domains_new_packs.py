"""Unit tests for the four pack-seeded domains.

* dense linear order (Q, <): Ferrante–Rackoff-style test points, density vs
  discreteness, the Calkin–Wilf carrier enumeration, and the
  projection-finiteness safety decider;
* integer difference constraints: the Bellman–Ford fast path (including the
  virtual zero node and strict inequalities), its agreement with Cooper, and
  the fast-path/fallback counters;
* finite cyclic successor Z/n: modular succ/pred, exact decision by
  exhaustive carrier checking, ``carrier_elements``, and the always-finite
  safety decider;
* shortlex strings: the rank/unrank order isomorphism with (N, <), decision
  by translation to Presburger, and validation errors.
"""

from fractions import Fraction

import pytest

from repro.domains import (
    CyclicSuccessorDomain,
    DenseOrderDomain,
    DomainError,
    IntegerDifferenceDomain,
    ShortlexStringDomain,
)
from repro.logic.builders import (
    apply,
    atom,
    conj,
    disj,
    eq,
    exists,
    forall,
    implies,
    neg,
    var,
)
from repro.logic.terms import Const
from repro.safety.relative_safety import (
    DenseOrderRelativeSafety,
    FiniteCarrierSafety,
    OrderedRelativeSafety,
)

X, Y, Z = var("x"), var("y"), var("z")


# ---------------------------------------------------------------------------
# Dense linear order (Q, <)
# ---------------------------------------------------------------------------


class TestDenseOrder:
    domain = DenseOrderDomain()

    def test_axioms_of_dense_orders_without_endpoints(self):
        between = exists("z", conj(atom("<", X, Z), atom("<", Z, Y)))
        assert self.domain.decide(
            forall("x", forall("y", implies(atom("<", X, Y), between)))
        )
        assert self.domain.decide(forall("x", exists("y", atom("<", Y, X))))
        assert self.domain.decide(forall("x", exists("y", atom("<", X, Y))))
        # Discreteness fails: no element has an immediate successor.
        assert not self.domain.decide(
            exists("x", exists("y", conj(atom("<", X, Y), neg(between))))
        )

    def test_constants_pin_down_open_intervals(self):
        inside = exists("x", conj(atom("<", Const(0), X), atom("<", X, Const(1))))
        empty = exists(
            "x",
            conj(atom("<", Const(Fraction(1, 2)), X),
                 atom("<", X, Const(Fraction(1, 2)))),
        )
        assert self.domain.decide(inside)
        assert not self.domain.decide(empty)

    def test_carrier_membership_and_enumeration(self):
        assert self.domain.contains(Fraction(2, 3))
        assert self.domain.contains(-7)
        assert not self.domain.contains(0.5)
        assert not self.domain.contains(True)
        sample = list(self.domain.sample_elements(9))
        assert len(sample) == len(set(sample)) == 9
        assert all(self.domain.contains(q) for q in sample)

    def test_rejects_non_order_sentences(self):
        with pytest.raises(DomainError):
            self.domain.decide(exists("x", atom("divides", X, X)))
        with pytest.raises(DomainError):
            self.domain.decide(exists("x", eq(apply("succ", X), X)))
        with pytest.raises(DomainError):
            self.domain.decide(atom("<", X, Const(1)))  # free variable

    def test_projection_finiteness_safety(self):
        from repro.experiments.corpora import numeric_schema
        from repro.relational.state import DatabaseState

        safety = DenseOrderRelativeSafety(self.domain)
        state = DatabaseState(numeric_schema(), {"S": [(0,), (1,)]})
        members = atom("S", X)
        assert safety.decide(members, state).is_finite
        # Bounded but dense-in-between: an open interval of answers.
        between = exists(
            "y", exists("z", conj(atom("S", Y), atom("S", Z),
                                  atom("<", Y, X), atom("<", X, Z)))
        )
        verdict = safety.decide(between, state)
        assert not verdict.is_finite
        assert "interval" in verdict.details

    def test_projection_finiteness_memoises(self):
        safety = DenseOrderRelativeSafety(self.domain)
        from repro.experiments.corpora import numeric_schema
        from repro.relational.state import DatabaseState

        state = DatabaseState(numeric_schema(), {"S": [(3,)]})
        safety.decide(atom("S", X), state)
        safety.decide(atom("S", X), state)
        assert safety.memo_info().hits == 1


# ---------------------------------------------------------------------------
# Integer difference constraints
# ---------------------------------------------------------------------------


class TestIntegerDifferences:
    def test_fast_path_agrees_with_cooper_on_difference_systems(self):
        x_minus_y = apply("-", X, Y)
        y_minus_x = apply("-", Y, X)
        cases = [
            (exists("x", exists("y", conj(atom("<=", x_minus_y, 1),
                                          atom("<=", y_minus_x, -1)))), True),
            (exists("x", exists("y", conj(atom("<=", x_minus_y, 1),
                                          atom("<=", y_minus_x, -2)))), False),
            (exists("x", exists("y", conj(atom("<", x_minus_y, 0),
                                          atom("<", y_minus_x, 0)))), False),
            (exists("x", atom("<", X, 0)), True),
            (exists("x", conj(atom("<=", X, 5), atom("<=", apply("-", Const(0), X), -3)))
             , True),
        ]
        for sentence, truth in cases:
            fast = IntegerDifferenceDomain()
            assert fast.decide(sentence) is truth
            assert fast.fast_path_decisions == 1, sentence
            assert fast.cooper_decisions == 0
            # The same sentence through the parent's Cooper procedure.
            from repro.domains.presburger import PresburgerDomain

            assert PresburgerDomain(carrier="integers").decide(sentence) is truth

    def test_non_difference_sentences_fall_back_to_cooper(self):
        domain = IntegerDifferenceDomain()
        parity = forall(
            "x",
            exists("y", disj(eq(X, apply("+", Y, Y)),
                             eq(X, apply("+", apply("+", Y, Y), 1)))),
        )
        assert domain.decide(parity) is True
        assert domain.cooper_decisions == 1
        assert domain.fast_path_decisions == 0

    def test_strict_inequalities_add_unit_slack(self):
        domain = IntegerDifferenceDomain()
        # x - y < 1 and y - x < 1 is satisfiable over Z (x = y) ...
        assert domain.decide(
            exists("x", exists("y", conj(atom("<", apply("-", X, Y), 1),
                                         atom("<", apply("-", Y, X), 1))))
        )
        # ... but x - y < 0 and y - x < 1 forces x < y <= x, unsatisfiable? no:
        # y - x < 1 over Z means y <= x, with x < y a contradiction.
        assert not domain.decide(
            exists("x", exists("y", conj(atom("<", apply("-", X, Y), 0),
                                         atom("<", apply("-", Y, X), 1))))
        )

    def test_equalities_split_into_two_edges(self):
        domain = IntegerDifferenceDomain()
        assert domain.decide(
            exists("x", exists("y", conj(eq(apply("-", X, Y), 3),
                                         atom("<=", apply("-", X, Y), 3))))
        )
        assert not domain.decide(
            exists("x", exists("y", conj(eq(apply("-", X, Y), 3),
                                         atom("<=", apply("-", X, Y), 2))))
        )
        assert domain.fast_path_decisions == 2

    def test_ordered_safety_auto_detects_the_integer_carrier(self):
        domain = IntegerDifferenceDomain()
        safety = OrderedRelativeSafety(domain)
        from repro.experiments.corpora import numeric_state

        state = numeric_state([-2, 4])
        below = exists("y", conj(atom("S", Y), atom("<", X, Y)))
        assert not safety.decide(below, state).is_finite  # unbounded below in Z
        between = exists(
            "y", exists("z", conj(atom("S", Y), atom("S", Z),
                                  atom("<", Y, X), atom("<", X, Z)))
        )
        assert safety.decide(between, state).is_finite


# ---------------------------------------------------------------------------
# Finite cyclic successor
# ---------------------------------------------------------------------------


class TestCyclicSuccessor:
    def test_carrier_and_modular_functions(self):
        domain = CyclicSuccessorDomain(modulus=5)
        assert domain.carrier_elements() == (0, 1, 2, 3, 4)
        assert domain.eval_function("succ", [4]) == 0
        assert domain.eval_function("pred", [0]) == 4
        assert not domain.contains(5)
        with pytest.raises(DomainError):
            domain.eval_function("succ", [7])

    def test_decides_by_exhaustive_carrier_check(self):
        domain = CyclicSuccessorDomain(modulus=3)
        three_around = apply("succ", apply("succ", apply("succ", X)))
        assert domain.decide(forall("x", eq(three_around, X)))
        assert not domain.decide(exists("x", eq(apply("succ", X), X)))
        assert domain.decide(forall("x", eq(apply("pred", apply("succ", X)), X)))

    def test_rejects_out_of_signature_sentences(self):
        domain = CyclicSuccessorDomain()
        with pytest.raises(DomainError):
            domain.decide(exists("x", atom("<", X, X)))
        with pytest.raises(DomainError):
            domain.decide(exists("x", eq(X, Const(12))))  # not in Z/12

    def test_finite_carrier_safety_always_finite(self):
        domain = CyclicSuccessorDomain()
        safety = FiniteCarrierSafety(domain)
        from repro.experiments.corpora import numeric_state

        for query in (atom("S", X), neg(atom("S", X)), eq(X, X)):
            verdict = safety.decide(query, numeric_state([1]))
            assert verdict.is_finite
            assert "carrier" in verdict.details

    def test_invalid_modulus_rejected(self):
        with pytest.raises(ValueError):
            CyclicSuccessorDomain(modulus=0)


# ---------------------------------------------------------------------------
# Shortlex strings
# ---------------------------------------------------------------------------


class TestShortlexStrings:
    domain = ShortlexStringDomain()

    def test_rank_unrank_is_an_order_isomorphism(self):
        words = [self.domain.unrank(i) for i in range(20)]
        assert words[:7] == ["", "a", "b", "aa", "ab", "ba", "bb"]
        for i, word in enumerate(words):
            assert self.domain.rank(word) == i
        # rank preserves the order exactly
        for i in range(19):
            assert self.domain.eval_predicate("<", [words[i], words[i + 1]])

    def test_enumeration_matches_unrank(self):
        from itertools import islice

        assert list(islice(self.domain.enumerate_elements(), 10)) == [
            self.domain.unrank(i) for i in range(10)
        ]

    def test_decides_order_sentences_via_presburger(self):
        between = exists("z", conj(atom("<", X, Z), atom("<", Z, Y)))
        assert self.domain.decide(forall("x", exists("y", atom("<", X, Y))))
        assert self.domain.decide(exists("x", forall("y", atom("<=", X, Y))))
        assert not self.domain.decide(
            forall("x", forall("y", implies(atom("<", X, Y), between)))
        )
        # Constants translate through their ranks: "" is least, below "a".
        assert self.domain.decide(exists("x", atom("<", X, Const("a"))))
        assert not self.domain.decide(exists("x", atom("<", X, Const(""))))

    def test_validation_rejects_foreign_constants_and_functions(self):
        with pytest.raises(DomainError):
            self.domain.decide(exists("x", eq(X, Const("xyz"))))
        with pytest.raises(DomainError):
            self.domain.decide(exists("x", eq(apply("succ", X), X)))
        with pytest.raises(ValueError):
            ShortlexStringDomain(alphabet="a")  # one letter is not enough

    def test_custom_alphabet_is_sorted_and_ranked_consistently(self):
        domain = ShortlexStringDomain(alphabet="cba")
        assert domain.alphabet == "abc"
        for i in range(30):
            assert domain.rank(domain.unrank(i)) == i

    def test_ordered_safety_through_the_isomorphism(self):
        safety = OrderedRelativeSafety(self.domain)
        from repro.relational.schema import DatabaseSchema, RelationSchema
        from repro.relational.state import DatabaseState

        schema = DatabaseSchema((RelationSchema("W", 1, ("word",)),))
        state = DatabaseState(schema, {"W": [("ab",)]})
        below = exists("y", conj(atom("W", Y), atom("<", X, Y)))
        above = exists("y", conj(atom("W", Y), atom("<", Y, X)))
        assert safety.decide(below, state).is_finite
        assert not safety.decide(above, state).is_finite
