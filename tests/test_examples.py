"""The shipped examples must keep running against the public API."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_are_present():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_to_completion(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} produced no output"


def test_experiments_cli_runs_selected_experiment(capsys):
    from repro.experiments.__main__ import main

    assert main(["E3"]) == 0
    output = capsys.readouterr().out
    assert "E3" in output and "Conclusion" in output

    assert main(["--list"]) == 0
    listing = capsys.readouterr().out
    assert "E12" in listing


def test_experiments_cli_rejects_unknown_id():
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["E99"])
