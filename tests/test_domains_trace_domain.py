"""Tests for the trace domain T and the NaturalOrderDomain specialisation."""

import pytest

from repro.domains.base import DomainError
from repro.domains.nat_order import NaturalOrderDomain
from repro.domains.traces_domain import TraceDomain
from repro.logic.builders import atom, conj, exists, forall, implies, neq, var
from repro.logic.parser import parse_formula
from repro.logic.terms import Const
from repro.turing.builders import loop_forever, unary_eraser
from repro.turing.encoding import encode_machine
from repro.turing.traces import trace_of
from repro.turing.words import WordSort

ERASER = encode_machine(unary_eraser())
LOOPER = encode_machine(loop_forever())


def test_nat_order_domain_signature_and_decide():
    domain = NaturalOrderDomain()
    assert domain.signature.has_predicate("<")
    assert domain.has_decidable_theory
    assert domain.decide(parse_formula("forall x. exists y. x < y"))
    assert not domain.decide(parse_formula("exists x. x < 0"))
    assert domain.eval_predicate("<=", (3, 3))


def test_trace_domain_carrier():
    domain = TraceDomain()
    assert domain.contains("1&*|")
    assert not domain.contains("abc")
    assert not domain.contains(42)
    sample = domain.sample_elements(6)
    assert "" in sample and len(sample) == 6


def test_trace_domain_classify_and_functions():
    domain = TraceDomain()
    trace = trace_of(ERASER, "11", 2)
    assert domain.classify(ERASER) is WordSort.MACHINE
    assert domain.classify("1&") is WordSort.INPUT
    assert domain.classify(trace) is WordSort.TRACE
    assert domain.classify("|*") is WordSort.OTHER
    assert domain.eval_function("m", (trace,)) == ERASER
    assert domain.eval_function("w", (trace,)) == "11"
    assert domain.eval_function("w", ("junk",)) == ""
    with pytest.raises(DomainError):
        domain.classify("abc")
    with pytest.raises(KeyError):
        domain.eval_function("f", ("x",))


def test_trace_domain_predicate_P():
    domain = TraceDomain()
    trace = trace_of(ERASER, "11", 3)
    assert domain.eval_predicate("P", (ERASER, "11", trace))
    assert not domain.eval_predicate("P", (LOOPER, "11", trace))
    with pytest.raises(KeyError):
        domain.eval_predicate("Q", ("a",))


def test_trace_domain_decide_delegates_to_reach_theory():
    domain = TraceDomain()
    # there exist two distinct traces of the eraser on "1"
    sentence = exists("x", exists("y", conj(
        atom("P", Const(ERASER), Const("1"), var("x")),
        atom("P", Const(ERASER), Const("1"), var("y")),
        neq(var("x"), var("y")),
    )))
    assert domain.decide(sentence)
    # but the empty machine-word argument is never a machine, so no trace of "" exists
    nothing = exists("x", atom("P", Const("111"), Const("1"), var("x")))
    assert not domain.decide(nothing)
