"""Unit tests for repro.logic.builders (simplifying constructors)."""

import pytest

from repro.logic.builders import (
    apply,
    atom,
    conj,
    const,
    disj,
    eq,
    exists,
    exists_many,
    forall,
    forall_many,
    neg,
    neq,
    term,
    var,
)
from repro.logic.formulas import BOTTOM, TOP, And, Bottom, Exists, ForAll, Not, Or, Top
from repro.logic.terms import Apply, Const, Var


def test_term_coercion():
    assert term("x") == Var("x")
    assert term(3) == Const(3)
    assert term("hello world") == Const("hello world")
    assert term(Var("y")) == Var("y")
    with pytest.raises(TypeError):
        term(True)
    with pytest.raises(TypeError):
        term(3.14)


def test_atom_and_apply_coerce_arguments():
    assert atom("P", "x", 3).args == (Var("x"), Const(3))
    assert apply("f", "x").args == (Var("x"),)


def test_conj_flattens_and_absorbs():
    a, b, c = atom("A", "x"), atom("B", "x"), atom("C", "x")
    assert conj(a, conj(b, c)) == And((a, b, c))
    assert conj(a, TOP) == a
    assert conj() == TOP
    assert isinstance(conj(a, BOTTOM), Bottom)


def test_disj_flattens_and_absorbs():
    a, b, c = atom("A", "x"), atom("B", "x"), atom("C", "x")
    assert disj(a, disj(b, c)) == Or((a, b, c))
    assert disj(a, BOTTOM) == a
    assert disj() == BOTTOM
    assert isinstance(disj(a, TOP), Top)


def test_neg_simplifies():
    a = atom("A", "x")
    assert neg(neg(a)) == a
    assert neg(TOP) == BOTTOM
    assert neg(BOTTOM) == TOP
    assert neg(a) == Not(a)


def test_eq_neq():
    assert eq("x", 3) == __import__("repro").logic.formulas.Equals(Var("x"), Const(3))
    assert isinstance(neq("x", "y"), Not)


def test_quantifier_builders():
    body = atom("P", "x", "y")
    assert exists("x", body) == Exists("x", body)
    assert forall(Var("x"), body) == ForAll("x", body)
    nested = exists_many(["x", "y"], body)
    assert isinstance(nested, Exists) and isinstance(nested.body, Exists)
    nested = forall_many([Var("x"), Var("y")], body)
    assert isinstance(nested, ForAll) and isinstance(nested.body, ForAll)
    assert exists_many([], body) == body
