"""Tests for rate limiting, load shedding, and budget clamping."""

import pytest

from repro.engine.budget import Budget
from repro.serve.admission import AdmissionController, AdmissionError, TokenBucket
from repro.serve.policy import ServerPolicy


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------


def test_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
    clock.advance(0.5)  # refills one token at 2/s
    assert bucket.try_acquire() and not bucket.try_acquire()


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
    clock.advance(60.0)
    assert bucket.tokens == pytest.approx(2.0)


def test_bucket_retry_after_names_the_deficit():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
    assert bucket.try_acquire()
    assert bucket.retry_after() == pytest.approx(0.5)  # 1 token at 2/s
    clock.advance(0.5)
    assert bucket.retry_after() == pytest.approx(0.0)


def test_bucket_rejects_nonpositive_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1, clock=FakeClock())
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0, clock=FakeClock())


# ---------------------------------------------------------------------------
# AdmissionController
# ---------------------------------------------------------------------------


def test_rate_limited_session_gets_429_with_retry_hint():
    clock = FakeClock()
    policy = ServerPolicy(rate=1.0, burst=2)
    controller = AdmissionController(policy, clock=clock)
    controller.admit("s1").release()
    controller.admit("s1").release()
    with pytest.raises(AdmissionError) as excinfo:
        controller.admit("s1")
    assert excinfo.value.status == 429
    # the hint is the exact refill time plus up to policy.retry_jitter
    # relative jitter (stampede de-synchronization) — never less
    base, ceiling = 1.0, 1.0 * (1 + policy.retry_jitter)
    assert base <= excinfo.value.retry_after <= ceiling
    stats = controller.stats()
    assert stats["admitted"] == 2 and stats["rejected_rate_limited"] == 1


def test_rate_limits_are_per_session():
    clock = FakeClock()
    policy = ServerPolicy(rate=1.0, burst=1)
    controller = AdmissionController(policy, clock=clock)
    controller.admit("noisy").release()
    with pytest.raises(AdmissionError):
        controller.admit("noisy")
    # an unrelated session is unaffected by the noisy neighbour
    controller.admit("quiet").release()


def test_over_capacity_sheds_load_with_503():
    clock = FakeClock()
    policy = ServerPolicy(rate=100.0, burst=100, max_inflight=2)
    controller = AdmissionController(policy, clock=clock)
    first = controller.admit("s1")
    second = controller.admit("s2")
    with pytest.raises(AdmissionError) as excinfo:
        controller.admit("s3")
    assert excinfo.value.status == 503
    first.release()
    # a slot freed up: admission resumes without waiting for the bucket
    third = controller.admit("s3")
    third.release()
    second.release()
    assert controller.stats()["inflight"] == 0
    assert controller.stats()["rejected_over_capacity"] == 1


def test_ticket_is_a_context_manager_and_release_is_idempotent():
    controller = AdmissionController(ServerPolicy(), clock=FakeClock())
    with controller.admit("s1") as ticket:
        assert controller.stats()["inflight"] == 1
    assert controller.stats()["inflight"] == 0
    ticket.release()  # double release must not go negative
    assert controller.stats()["inflight"] == 0


def test_forget_drops_a_sessions_bucket():
    clock = FakeClock()
    controller = AdmissionController(ServerPolicy(rate=1.0, burst=1), clock=clock)
    controller.admit("s1").release()
    with pytest.raises(AdmissionError):
        controller.admit("s1")
    controller.forget("s1")  # fresh bucket: full burst again
    controller.admit("s1").release()


# ---------------------------------------------------------------------------
# Budget clamping (ServerPolicy.clamp)
# ---------------------------------------------------------------------------


def test_clamp_defaults_to_the_caps():
    policy = ServerPolicy(
        max_rows_cap=100, max_candidates_cap=200, fuel_cap=300, time_limit_cap=4.0
    )
    clamped = policy.clamp(None)
    assert (clamped.max_rows, clamped.max_candidates, clamped.fuel) == (100, 200, 300)
    assert clamped.time_limit == 4.0


def test_clamp_caps_but_never_raises_a_request():
    policy = ServerPolicy(
        max_rows_cap=100, max_candidates_cap=200, fuel_cap=300, time_limit_cap=4.0
    )
    greedy = Budget(max_rows=10**9, max_candidates=10**9, fuel=10**9, time_limit=600.0)
    clamped = policy.clamp(greedy)
    assert (clamped.max_rows, clamped.max_candidates, clamped.fuel) == (100, 200, 300)
    assert clamped.time_limit == 4.0

    modest = Budget(max_rows=5, max_candidates=7, fuel=9, time_limit=0.5)
    kept = policy.clamp(modest)
    assert (kept.max_rows, kept.max_candidates, kept.fuel) == (5, 7, 9)
    assert kept.time_limit == 0.5


def test_clamp_fills_in_a_missing_time_limit():
    policy = ServerPolicy(time_limit_cap=2.5)
    assert policy.clamp(Budget(time_limit=None)).time_limit == 2.5


def test_policy_validates_its_fields():
    with pytest.raises(ValueError):
        ServerPolicy(max_sessions=0)
    with pytest.raises(ValueError):
        ServerPolicy(rate=-1.0)
    with pytest.raises(ValueError):
        ServerPolicy(session_ttl=0.0)


def test_policy_describe_is_json_ready():
    import json

    payload = ServerPolicy().describe()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["max_sessions"] == 64
