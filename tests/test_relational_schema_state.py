"""Tests for database schemas and states."""

import pytest

from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.state import DatabaseState, Relation


def test_relation_schema_validation():
    schema = RelationSchema("F", 2)
    assert schema.attributes == ("a0", "a1")
    named = RelationSchema("F", 2, ("father", "son"))
    assert named.attributes == ("father", "son")
    with pytest.raises(ValueError):
        RelationSchema("F", 2, ("only-one",))
    with pytest.raises(ValueError):
        RelationSchema("F", -1)


def test_database_schema_lookup_and_duplicates():
    schema = DatabaseSchema.of(F=2, R=1)
    assert "F" in schema and "R" in schema and "X" not in schema
    assert schema.arity("F") == 2
    assert len(schema) == 2
    with pytest.raises(KeyError):
        schema.relation("X")
    with pytest.raises(ValueError):
        DatabaseSchema((RelationSchema("F", 1), RelationSchema("F", 2)))


def test_schema_extend():
    schema = DatabaseSchema.of(F=2)
    extended = schema.extend([RelationSchema("R", 1)])
    assert "R" in extended and "F" in extended
    assert "R" not in schema


def test_relation_construction_and_set_operations():
    relation = Relation(2, [(1, 2), (2, 3), (1, 2)])
    assert len(relation) == 2
    assert (1, 2) in relation and (9, 9) not in relation
    assert relation.elements() == frozenset({1, 2, 3})
    other = Relation(2, [(2, 3), (4, 5)])
    assert len(relation.union(other)) == 3
    assert len(relation.difference(other)) == 1
    assert len(relation.intersection(other)) == 1
    with pytest.raises(ValueError):
        relation.union(Relation(1, [(1,)]))
    with pytest.raises(ValueError):
        Relation(2, [(1,)])


def test_relation_from_rows():
    relation = Relation.from_rows([(1, 2)])
    assert relation.arity == 2
    with pytest.raises(ValueError):
        Relation.from_rows([])


def test_database_state_construction_and_access():
    schema = DatabaseSchema.of(F=2, R=1)
    state = DatabaseState(schema, {"F": [(1, 2)], "R": [(7,)]})
    assert (1, 2) in state["F"]
    assert state.elements() == frozenset({1, 2, 7})
    assert state.total_rows() == 2
    # missing relations default to empty
    sparse = DatabaseState(schema, {"F": [(1, 2)]})
    assert len(sparse["R"]) == 0
    with pytest.raises(ValueError):
        DatabaseState(schema, {"X": [(1,)]})
    with pytest.raises(ValueError):
        DatabaseState(schema, {"R": [(1, 2)]})
    with pytest.raises(KeyError):
        state["missing"]


def test_database_state_with_relation_and_equality():
    schema = DatabaseSchema.of(R=1)
    state = DatabaseState(schema, {"R": [(1,)]})
    updated = state.with_relation("R", [(1,), (2,)])
    assert state != updated
    assert len(updated["R"]) == 2
    assert hash(state) == hash(DatabaseState(schema, {"R": [(1,)]}))
