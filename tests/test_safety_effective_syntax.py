"""Tests for the three positive effective-syntax constructions."""

from repro.domains.equality import EqualityDomain
from repro.domains.successor import SuccessorDomain
from repro.experiments.corpora import (
    family_schema,
    family_state,
    numeric_schema,
    numeric_state,
    ordered_query_corpus,
    successor_query_corpus,
)
from repro.experiments.exp01_intro_queries import (
    grandfather_query,
    more_than_one_son_query,
    unsafe_disjunction_query,
)
from repro.logic.builders import atom, var
from repro.relational.calculus import evaluate_query, evaluate_query_active_domain
from repro.safety.effective_syntax import (
    ActiveDomainSyntax,
    ExtendedActiveDomainSyntax,
    FinitizationSyntax,
)
from repro.safety.finitization import finitize


def test_active_domain_syntax_membership():
    syntax = ActiveDomainSyntax(family_schema())
    query = more_than_one_son_query()
    restricted = syntax.restrict(query)
    assert syntax.contains(restricted)
    assert not syntax.contains(query)
    enumerated = list(syntax.enumerate_syntax([query, grandfather_query()]))
    assert all(syntax.contains(f) for f in enumerated)


def test_active_domain_syntax_preserves_finite_queries():
    schema = family_schema()
    state = family_state(generations=2)
    domain = EqualityDomain()
    syntax = ActiveDomainSyntax(schema)
    for query in (more_than_one_son_query(), grandfather_query()):
        raw = evaluate_query_active_domain(query, state, interpretation=domain)
        restricted = evaluate_query_active_domain(syntax.restrict(query), state, interpretation=domain)
        assert raw.rows == restricted.rows


def test_active_domain_syntax_tames_unsafe_query():
    schema = family_schema()
    state = family_state(generations=2)
    domain = EqualityDomain()
    syntax = ActiveDomainSyntax(schema)
    unsafe = unsafe_disjunction_query()
    # evaluated over an enlarged universe, the raw query picks up elements
    # outside the active domain; its restriction does not.
    universe = sorted(state.elements() | {900, 901})
    raw = evaluate_query(unsafe, universe, state=state, interpretation=domain)
    restricted = evaluate_query(syntax.restrict(unsafe), universe, state=state, interpretation=domain)
    assert any(900 in row or 901 in row for row in raw.rows)
    assert not any(900 in row or 901 in row for row in restricted.rows)


def test_finitization_syntax_membership_and_enumeration():
    syntax = FinitizationSyntax()
    for name, query, _finite in ordered_query_corpus():
        restricted = syntax.restrict(query)
        assert restricted == finitize(query)
        assert syntax.contains(restricted), name
        assert not syntax.contains(query), name
    members = list(syntax.enumerate_syntax(q for _n, q, _f in ordered_query_corpus()))
    assert all(syntax.contains(m) for m in members)


def test_extended_active_domain_syntax_membership():
    syntax = ExtendedActiveDomainSyntax(numeric_schema())
    for name, query, _finite in successor_query_corpus():
        restricted = syntax.restrict(query)
        assert syntax.contains(restricted), name
        assert not syntax.contains(query), name


def test_extended_active_domain_syntax_preserves_finite_queries():
    domain = SuccessorDomain()
    state = numeric_state([3, 6])
    syntax = ExtendedActiveDomainSyntax(numeric_schema())
    universe = list(range(0, 15))
    for name, query, finite in successor_query_corpus():
        if not finite:
            continue
        raw = evaluate_query(query, universe, state=state, interpretation=domain)
        restricted = evaluate_query(syntax.restrict(query), universe, state=state, interpretation=domain)
        assert raw.rows == restricted.rows, name


def test_extended_active_domain_syntax_bounds_infinite_queries():
    from repro.logic.analysis import quantifier_depth

    domain = SuccessorDomain()
    state = numeric_state([3, 6])
    syntax = ExtendedActiveDomainSyntax(numeric_schema())
    universe = list(range(0, 40))
    for name, query, finite in successor_query_corpus():
        if finite:
            continue
        restricted = evaluate_query(syntax.restrict(query), universe, state=state, interpretation=domain)
        bound = 6 + 2 ** quantifier_depth(query)
        assert all(all(value <= bound for value in row) for row in restricted.rows), name
