"""Deadline propagation and cooperative cancellation across every substrate.

The regression at the heart of this file: ``Budget.time_limit`` used to be
honoured only by the enumeration strategy — the five plan classes ran to
completion no matter what the budget said.  Now every execution path carries
a cooperative :class:`~repro.engine.budget.Deadline` and an oversized query
with a tiny time limit terminates promptly on *all* strategies.
"""

import threading
import time

import pytest

from repro import Budget
from repro.api import Session
from repro.engine.budget import (
    Cancelled,
    CancelToken,
    DeadlineExceeded,
    EvaluationInterrupted,
)
from repro.relational.schema import DatabaseSchema, RelationSchema

#: every non-enumeration strategy (the classes that used to ignore the limit)
STRATEGIES = ("active-domain", "compiled", "vectorized", "parallel", "incremental")

#: a state large enough that a 4-way self-join cannot finish in 10 ms
BIG_ROWS = 20_000
BIG_QUERY = (
    "exists u. exists v. exists w. "
    "(F(x, u) & F(u, v) & F(v, w) & F(w, z))"
)


def nat_session(incremental=False):
    schema = DatabaseSchema((RelationSchema("F", 2),))
    return Session("nat<", schema, incremental=incremental)


def big_state(session):
    return session.state(F=[(i, (i * 7) % BIG_ROWS) for i in range(BIG_ROWS)])


# ---------------------------------------------------------------------------
# Deadline / CancelToken units
# ---------------------------------------------------------------------------


def test_expired_deadline_raises_with_operator_and_stats():
    deadline = Budget(time_limit=0.0).start_deadline()
    with pytest.raises(DeadlineExceeded) as excinfo:
        deadline.check("Join(pairwise)")
    error = excinfo.value
    assert error.operator == "Join(pairwise)"
    assert "time limit" in str(error)
    assert isinstance(error, EvaluationInterrupted)


def test_generous_deadline_does_not_fire():
    deadline = Budget(time_limit=60.0).start_deadline()
    deadline.check("anything")  # must not raise


def test_cancellation_beats_the_deadline():
    token = CancelToken()
    token.cancel("client went away")
    deadline = Budget(time_limit=0.0).start_deadline(token)
    # Both conditions hold; cancellation is reported, not the deadline.
    with pytest.raises(Cancelled) as excinfo:
        deadline.check("Scan")
    assert "client went away" in str(excinfo.value)


def test_cancel_is_idempotent_and_first_reason_wins():
    token = CancelToken()
    assert token.cancel("first") is True
    assert token.cancel("second") is False
    assert token.reason == "first"


def test_interruption_payload_is_json_ready():
    deadline = Budget(time_limit=0.0).start_deadline()
    with pytest.raises(DeadlineExceeded) as excinfo:
        deadline.check("Project")
    payload = excinfo.value.payload()
    assert payload["error"] == "DeadlineExceeded"
    assert payload["operator"] == "Project"
    assert "message" in payload and "partial_stats" in payload


# ---------------------------------------------------------------------------
# The regression: time_limit is honoured by every strategy
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_time_limit_interrupts_every_strategy(strategy):
    session = nat_session(incremental=strategy == "incremental")
    state = big_state(session)
    started = time.perf_counter()
    with pytest.raises(DeadlineExceeded) as excinfo:
        session.run(
            BIG_QUERY, state, strategy=strategy, budget=Budget(time_limit=0.01)
        )
    elapsed = time.perf_counter() - started
    # "promptly": well under a second, not after the full join
    assert elapsed < 1.0, f"{strategy} took {elapsed:.2f}s to notice the deadline"
    assert excinfo.value.operator, "the interruption names the operator reached"


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_generous_time_limit_does_not_interrupt(strategy):
    session = nat_session(incremental=strategy == "incremental")
    state = session.state(F=[(1, 2), (2, 3)])
    result = session.run(
        "F(x, y)", state, strategy=strategy, budget=Budget(time_limit=60.0)
    )
    assert frozenset(result.answer.rows()) == frozenset({(1, 2), (2, 3)})


# ---------------------------------------------------------------------------
# Cancellation through the session API
# ---------------------------------------------------------------------------


def test_pre_cancelled_token_aborts_immediately():
    session = nat_session()
    state = session.state(F=[(1, 2)])
    token = CancelToken()
    token.cancel("gone before it started")
    with pytest.raises(Cancelled) as excinfo:
        session.run(
            "F(x, y)", state, strategy="compiled",
            budget=Budget(), cancel_token=token,
        )
    assert "gone before it started" in str(excinfo.value)


def test_cancel_token_aborts_a_query_mid_flight():
    session = nat_session()
    state = big_state(session)
    token = CancelToken()
    outcome = {}

    def worker():
        try:
            session.run(
                BIG_QUERY, state, strategy="compiled",
                budget=Budget(time_limit=30.0), cancel_token=token,
            )
            outcome["result"] = "completed"
        except Cancelled as error:
            outcome["result"] = "cancelled"
            outcome["error"] = error

    thread = threading.Thread(target=worker)
    thread.start()
    time.sleep(0.05)
    token.cancel("cancelled from the test")
    thread.join(timeout=30)
    assert not thread.is_alive(), "the query never noticed the cancellation"
    assert outcome["result"] == "cancelled"
    assert "cancelled from the test" in str(outcome["error"])


def test_cancellation_does_not_interrupt_enumeration_time_budget():
    # The Section 1.1 enumeration answers Unknown on time expiry (its
    # documented contract); only explicit cancellation raises.
    session = Session("presburger")
    answer = session.query(
        "x >= 0", strategy="enumeration", budget=Budget(time_limit=0.0)
    )
    assert answer.rows() == ()  # UnknownAnswer, not an exception


# ---------------------------------------------------------------------------
# Surfacing: explain() records the interruption
# ---------------------------------------------------------------------------


def test_interruption_is_recorded_in_explain():
    session = nat_session()
    state = big_state(session)
    formula = session.compile(BIG_QUERY)
    plan = session.plan("compiled", Budget(time_limit=0.01))
    with pytest.raises(DeadlineExceeded):
        plan.execute(formula, state)
    assert "interrupted" in plan.explain()
    assert plan.last_interruption is not None
    # A later successful execution clears the note.
    small = session.state(F=[(1, 2)])
    plan2 = session.plan("compiled", Budget(time_limit=30.0))
    plan2.execute(session.compile("F(x, y)"), small)
    assert plan2.last_interruption is None
