"""Tests for incremental evaluation: deltas, ΔQ maintenance, answer caching.

Five layers:

* :class:`repro.relational.state.Delta` value semantics (normalisation,
  composition, hashing) and :meth:`DatabaseState.apply` (structural sharing,
  O(Δ) fingerprint patching, version/lineage bookkeeping);
* the columnar :class:`~repro.relational.columnar.EncodeCache` mutation
  protocol — append-only column growth on insert-only deltas, invalidation
  for deletes, and the new counters;
* the ΔQ maintenance pass (:mod:`repro.relational.delta`): per-node rules,
  the aggregate-bound RangeScan regression, and the adom-shrink fallback;
* randomized property tests — interleaved insert/delete sequences answered
  incrementally must equal rebuilt-from-scratch answers across every
  substrate the pack registry claims;
* the serving wiring: :class:`~repro.engine.answer_cache.AnswerCache`
  decisions, ``strategy="incremental"``, incremental sessions with
  ``apply_delta``, and the ``/mutate`` endpoint.
"""

import json
import random
import urllib.request

import pytest

from repro import Delta, connect
from repro.domains import available_packs, get_pack
from repro.domains.equality import EqualityDomain
from repro.engine.answer_cache import AnswerCache
from repro.engine.budget import Budget
from repro.engine.plans import (
    STRATEGIES,
    CompiledAlgebraPlan,
    IncrementalAlgebraPlan,
    ParallelAlgebraPlan,
    VectorizedAlgebraPlan,
    plan_for_strategy,
)
from repro.logic.parser import parse_formula
from repro.relational.calculus import evaluate_query_active_domain
from repro.relational.columnar import HAVE_NUMPY, EncodeCache
from repro.relational.compile import compile_query
from repro.relational.delta import (
    DeltaUnsupported,
    maintain_plan,
    materialize_plan,
)
from repro.relational.exec import run_plan
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.state import DatabaseState, Relation

EQ = EqualityDomain()

SCHEMA = DatabaseSchema((
    RelationSchema("F", 2, ("father", "son")),
    RelationSchema("P", 1, ("person",)),
))


def _state(f_rows, p_rows=()):
    return DatabaseState(SCHEMA, {"F": f_rows, "P": p_rows})


# ---------------------------------------------------------------------------
# Delta value semantics
# ---------------------------------------------------------------------------


def test_delta_normalisation_and_predicates():
    d = Delta(inserts={"F": [[1, 2], (1, 2)], "P": []}, deletes={"F": [(0, 1)]})
    assert d.inserts == {"F": frozenset({(1, 2)})}  # rows tupled, empties dropped
    assert d.deletes == {"F": frozenset({(0, 1)})}
    assert d.changed_relations() == ("F",)
    assert d.row_count() == 2
    assert not d.insert_only()
    assert not d.is_empty()
    assert Delta().is_empty()
    assert Delta.insert("P", (7,)).insert_only()


def test_delta_is_hashable_value():
    a = Delta(inserts={"F": [(1, 2)]})
    b = Delta(inserts={"F": [(1, 2)]})
    assert a == b and hash(a) == hash(b)
    assert len({a, b}) == 1


def test_delta_composition_matches_sequential_application():
    state = _state([(1, 2), (2, 3)], [(1,)])
    d1 = Delta(inserts={"F": [(3, 4)]}, deletes={"P": [(1,)]})
    d2 = Delta(inserts={"P": [(9,)]}, deletes={"F": [(3, 4), (1, 2)]})
    sequential = state.apply(d1).apply(d2)
    composed = state.apply(d1.then(d2))
    assert sequential.relations["F"].rows == composed.relations["F"].rows
    assert sequential.relations["P"].rows == composed.relations["P"].rows
    assert sequential.fingerprint() == composed.fingerprint()


def test_delta_then_insert_cancelled_by_delete_is_not_a_base_delete():
    # insert-then-delete of a row absent from the base must compose to a
    # no-op, not to a delete of a row the base never had
    state = _state([(1, 2)])
    d = Delta.insert("F", (5, 6)).then(Delta.delete("F", (5, 6)))
    assert state.apply(d) is state


# ---------------------------------------------------------------------------
# DatabaseState.apply
# ---------------------------------------------------------------------------


def test_apply_matches_rebuilt_state_and_patches_fingerprint():
    state = _state([(1, 2), (2, 3)], [(1,), (2,)])
    delta = Delta(inserts={"F": [(3, 4)]}, deletes={"P": [(2,)]})
    mutated = state.apply(delta)
    rebuilt = _state([(1, 2), (2, 3), (3, 4)], [(1,)])
    assert mutated.relations["F"].rows == rebuilt.relations["F"].rows
    assert mutated.relations["P"].rows == rebuilt.relations["P"].rows
    # the patched fingerprint equals a from-scratch computation
    assert mutated.fingerprint() == rebuilt.fingerprint()
    assert mutated.fingerprint() != state.fingerprint()


def test_apply_shares_untouched_relations_structurally():
    state = _state([(1, 2)], [(1,)])
    mutated = state.apply(Delta.insert("F", (2, 3)))
    assert mutated.relations["P"] is state.relations["P"]
    assert mutated.relations["F"] is not state.relations["F"]


def test_apply_tracks_version_and_effective_lineage():
    state = _state([(1, 2)])
    assert state.version == 0 and state.lineage == ()
    # (1, 2) is already present: the *effective* delta drops it
    mutated = state.apply(Delta.insert("F", (1, 2), (9, 9)))
    assert mutated.version == 1
    ((parent_fp, effective),) = mutated.lineage
    assert parent_fp == state.fingerprint()
    assert effective.inserts == {"F": frozenset({(9, 9)})}


def test_apply_noop_returns_self():
    state = _state([(1, 2)])
    assert state.apply(Delta()) is state
    assert state.apply(Delta.insert("F", (1, 2))) is state  # already present
    assert state.apply(Delta.delete("F", (7, 7))) is state  # never present


def test_apply_rejects_unknown_relation_and_bad_arity():
    state = _state([(1, 2)])
    with pytest.raises(ValueError):
        state.apply(Delta.insert("Q", (1,)))
    with pytest.raises(ValueError):
        state.apply(Delta.insert("F", (1, 2, 3)))


def test_delete_then_insert_same_row_survives():
    # apply() removes deletes first, then adds inserts
    state = _state([(1, 2)])
    mutated = state.apply(Delta(inserts={"F": [(1, 2)]}, deletes={"F": [(1, 2)]}))
    assert mutated is state


# ---------------------------------------------------------------------------
# EncodeCache growth and invalidation
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_NUMPY, reason="columnar cache needs numpy")
def test_encode_cache_grows_columns_on_insert_only_delta():
    import numpy as np

    cache = EncodeCache(maxsize=8)
    state = _state([(1, 2), (2, 3)], [(1,)])
    codec = cache.codec_for(state, (1, 2, 3))
    entry = cache.columns_for(state, codec)
    entry["F"] = np.asarray([[1, 2], [2, 3]], dtype=np.int64)
    entry["P"] = np.asarray([[1]], dtype=np.int64)

    delta = Delta.insert("F", (3, 4))
    mutated = state.apply(delta)
    assert cache.migrate(state, mutated, delta) == 1
    new_entry = cache.columns_for(mutated, cache.codec_for(mutated, (1, 2, 3, 4)))
    assert new_entry["F"].shape == (3, 2)
    assert new_entry["P"] is entry["P"]  # untouched relation: shared array
    info = cache.info()
    assert info.grown_columns == 1
    assert info.invalidated == 0


@pytest.mark.skipif(not HAVE_NUMPY, reason="columnar cache needs numpy")
def test_encode_cache_invalidates_on_delete():
    import numpy as np

    cache = EncodeCache(maxsize=8)
    state = _state([(1, 2)])
    entry = cache.columns_for(state, cache.codec_for(state, (1, 2)))
    entry["F"] = np.asarray([[1, 2]], dtype=np.int64)
    delta = Delta.delete("F", (1, 2))
    mutated = state.apply(delta)
    assert cache.migrate(state, mutated, delta) == 0
    assert cache.info().invalidated == 1


@pytest.mark.skipif(not HAVE_NUMPY, reason="columnar cache needs numpy")
def test_encode_cache_explicit_invalidate_counts():
    import numpy as np

    cache = EncodeCache(maxsize=8)
    state = _state([(1, 2)])
    entry = cache.columns_for(state, cache.codec_for(state, (1, 2)))
    entry["F"] = np.asarray([[1, 2]], dtype=np.int64)
    assert cache.invalidate(state) == 1
    assert cache.invalidate(state) == 0  # idempotent
    info = cache.info()
    assert info.invalidated == 1
    assert "invalidated=1" in str(info)


# ---------------------------------------------------------------------------
# ΔQ maintenance: node rules
# ---------------------------------------------------------------------------


def _maintained_equals_recomputed(query_text, rows_before, delta, domain=EQ,
                                  schema=SCHEMA, state_table=None):
    query = parse_formula(query_text)
    state = DatabaseState(schema, state_table or {"F": rows_before})
    compiled = compile_query(query, schema, domain)
    mat = materialize_plan(compiled.plan, state, compiled.universe(state, ()), domain)
    mutated = state.apply(delta)
    maintain_plan(mat, delta, mutated, compiled.universe(mutated, ()), domain)
    expected = run_plan(
        compiled.plan, mutated, compiled.universe(mutated, ()), domain
    )
    assert mat.rows == expected
    assert mat.fingerprint == mutated.fingerprint()
    return mat


def test_maintain_scan_and_join():
    mat = _maintained_equals_recomputed(
        "exists y. (F(x, y) & F(y, z))",
        [(1, 2), (2, 3)],
        Delta.insert("F", (3, 4)),
    )
    assert (2, 4) in mat.rows


def test_maintain_join_delete():
    _maintained_equals_recomputed(
        "exists y. (F(x, y) & F(y, z))",
        [(1, 2), (2, 3), (3, 4)],
        Delta.delete("F", (2, 3)),
    )


def test_maintain_antijoin_blocking_and_unblocking():
    # sons with no sons of their own: inserting F(2, 9) blocks x=2
    query = "exists y. (F(y, x) & ~exists z. F(x, z))"
    _maintained_equals_recomputed(query, [(1, 2), (1, 3)], Delta.insert("F", (2, 9)))
    # and deleting the blocker un-blocks it again (9 stays in the active
    # domain through (9, 9), so the delete is maintainable)
    _maintained_equals_recomputed(
        query, [(1, 2), (1, 3), (2, 9), (9, 9)], Delta.delete("F", (2, 9))
    )


def test_maintain_rangescan_updates_every_aggregate_bound():
    # ∃y∃z (P(y) ∧ P(z) ∧ y < x ∧ x < z) compiles to a RangeScan with TWO
    # aggregate bounds; an insert that moves the max must refresh the upper
    # bound's source too (regression: a short-circuited visit left it stale)
    from repro.domains.nat_order import NaturalOrderDomain

    nat = NaturalOrderDomain()
    schema = DatabaseSchema((RelationSchema("P", 1, ("n",)),))
    query = parse_formula("exists y. (exists z. (P(y) & P(z) & y < x & x < z))")
    state = DatabaseState(schema, {"P": [(1,), (3,), (5,)]})
    compiled = compile_query(query, schema, nat)
    mat = materialize_plan(compiled.plan, state, compiled.universe(state, ()), nat)
    delta = Delta.insert("P", (4,), (9,))
    mutated = state.apply(delta)
    maintain_plan(mat, delta, mutated, compiled.universe(mutated, ()), nat)
    expected = run_plan(compiled.plan, mutated, compiled.universe(mutated, ()), nat)
    assert mat.rows == expected == {(3,), (4,), (5,)}


def test_maintain_negation_crosspad_under_adom_growth():
    _maintained_equals_recomputed(
        "~F(x, y)", [(1, 2)], Delta.insert("F", (3, 4))
    )


def test_adom_shrink_raises_delta_unsupported():
    query = parse_formula("~F(x, y)")
    state = _state([(1, 2), (3, 4)])
    compiled = compile_query(query, SCHEMA, EQ)
    mat = materialize_plan(compiled.plan, state, compiled.universe(state, ()), EQ)
    delta = Delta.delete("F", (3, 4))  # 3 and 4 lose their last occurrence
    mutated = state.apply(delta)
    with pytest.raises(DeltaUnsupported):
        maintain_plan(mat, delta, mutated, compiled.universe(mutated, ()), EQ)


def test_maintenance_is_cumulative_across_many_deltas():
    query = parse_formula("exists y. (F(x, y) & F(y, z))")
    state = _state([(1, 2)])
    compiled = compile_query(query, SCHEMA, EQ)
    mat = materialize_plan(compiled.plan, state, compiled.universe(state, ()), EQ)
    for delta in (
        Delta.insert("F", (2, 3)),
        Delta.insert("F", (3, 4)),
        # (2, 3) can go: 2 survives in (1, 2) and 3 in (3, 4), so the
        # active domain is unchanged and the delete is maintainable
        Delta(inserts={"F": [(4, 5)]}, deletes={"F": [(2, 3)]}),
    ):
        mutated = state.apply(delta)
        maintain_plan(mat, delta, mutated, compiled.universe(mutated, ()), EQ)
        assert mat.rows == run_plan(
            compiled.plan, mutated, compiled.universe(mutated, ()), EQ
        )
        state = mutated
    assert mat.maintained == 3


# ---------------------------------------------------------------------------
# Randomized property: incremental ≡ rebuilt, across substrates
# ---------------------------------------------------------------------------


def _substrate_pack_names():
    return [
        name for name in available_packs()
        if get_pack(name).supports_compiled_algebra
    ]


def _random_delta(rng, state, pool, insert_only=False):
    inserts, deletes = {}, {}
    for name, relation in pool.relations.items():
        rows = sorted(relation.rows, key=repr)
        if rows and rng.random() < 0.8:
            inserts[name] = rng.sample(rows, min(2, len(rows)))
    if not insert_only:
        for name, relation in state.relations.items():
            rows = sorted(relation.rows, key=repr)
            if rows and rng.random() < 0.5:
                deletes[name] = [rng.choice(rows)]
    return Delta(inserts=inserts, deletes=deletes)


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("pack_name", _substrate_pack_names())
def test_property_interleaved_deltas_equal_rebuilt(pack_name, seed):
    """Incrementally maintained answers equal every substrate's answer on the
    rebuilt state, across randomized insert/delete interleavings."""
    pack = get_pack(pack_name)
    domain = pack.factory()
    extras = tuple(domain.carrier_elements()) if pack.finite_carrier else ()
    substrates = [CompiledAlgebraPlan(domain=domain, extra_elements=extras)]
    if HAVE_NUMPY and pack.supports_vectorized:
        substrates.append(VectorizedAlgebraPlan(domain=domain, extra_elements=extras))
    if HAVE_NUMPY and pack.supports_parallel:
        substrates.append(ParallelAlgebraPlan(
            domain=domain, extra_elements=extras,
            parallel_threshold=1, morsel_rows=3,
        ))
    checked = 0
    for corpus in pack.corpora():
        if corpus.state_factory is None:
            continue
        rng = random.Random(f"delta-prop/{pack_name}/{corpus.name}/{seed}")
        state = corpus.state_factory(rng, 4)
        pool = corpus.state_factory(rng, 9)
        incremental = IncrementalAlgebraPlan(
            domain=domain, extra_elements=extras, answer_cache=AnswerCache()
        )
        for step in range(5):
            if step:
                mutated = state.apply(
                    _random_delta(rng, state, pool, insert_only=step == 1)
                )
                if mutated is state:
                    continue
                state = mutated
            for pq in corpus.queries:
                reference = evaluate_query_active_domain(
                    pq.query, state, interpretation=domain, extra_elements=extras
                ).rows
                got = set(incremental.execute(pq.query, state).rows())
                assert got == reference, (
                    f"incremental disagrees with the tree walker on "
                    f"{pack_name}/{corpus.name}/{pq.name} at step {step}"
                )
                for plan in substrates:
                    assert set(plan.execute(pq.query, state).rows()) == reference
                checked += 1
    assert checked > 0


# ---------------------------------------------------------------------------
# AnswerCache decisions
# ---------------------------------------------------------------------------


def _cached_answer(cache, state, query_text="F(x, y)"):
    query = parse_formula(query_text)
    compiled = compile_query(query, SCHEMA, EQ)
    key = (query, SCHEMA, EQ.name, ())
    return cache.answer(key, compiled, state, (), EQ)


def test_answer_cache_miss_hit_maintain_and_recompute():
    cache = AnswerCache(maxsize=4)
    state = _state([(1, 2)])
    rows, decision = _cached_answer(cache, state)
    assert rows == {(1, 2)} and "miss" in decision

    rows, decision = _cached_answer(cache, state)
    assert rows == {(1, 2)} and decision.startswith("answer cache hit")

    mutated = state.apply(Delta.insert("F", (2, 3)))
    rows, decision = _cached_answer(cache, mutated)
    assert rows == {(1, 2), (2, 3)} and decision.startswith("delta-maintained")

    unrelated = _state([(8, 9)])
    rows, decision = _cached_answer(cache, unrelated)
    assert rows == {(8, 9)} and "no lineage path" in decision

    info = cache.info()
    assert (info.hits, info.maintained, info.misses, info.rematerialized) == (1, 1, 1, 1)
    assert info.maintained_rows > 0


def test_answer_cache_walks_multi_delta_lineage():
    cache = AnswerCache()
    state = _state([(1, 2)])
    _cached_answer(cache, state)
    for row in ((2, 3), (3, 4), (4, 5)):
        state = state.apply(Delta.insert("F", row))
    rows, decision = _cached_answer(cache, state)
    assert rows == {(1, 2), (2, 3), (3, 4), (4, 5)}
    assert "3 delta(s)" in decision


def test_answer_cache_recomputes_on_unsupported_delta():
    cache = AnswerCache()
    state = _state([(1, 2), (3, 4)])
    rows, _ = _cached_answer(cache, state, "~F(x, y)")
    mutated = state.apply(Delta.delete("F", (3, 4)))  # adom shrinks
    rows, decision = _cached_answer(cache, mutated, "~F(x, y)")
    assert decision.startswith("recomputed in full")
    assert rows == run_plan(
        compile_query(parse_formula("~F(x, y)"), SCHEMA, EQ).plan,
        mutated,
        compile_query(parse_formula("~F(x, y)"), SCHEMA, EQ).universe(mutated, ()),
        EQ,
    )
    assert cache.info().rematerialized == 1


def test_answer_cache_lru_eviction_and_clear():
    cache = AnswerCache(maxsize=1)
    state = _state([(1, 2)])
    _cached_answer(cache, state, "F(x, y)")
    _cached_answer(cache, state, "F(y, x)")  # evicts the first
    assert cache.info().evictions == 1
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# Strategy, planner, and session integration
# ---------------------------------------------------------------------------


def test_incremental_strategy_is_registered():
    assert "incremental" in STRATEGIES
    plan = plan_for_strategy("incremental", EQ)
    assert isinstance(plan, IncrementalAlgebraPlan)
    assert plan.strategy == "incremental"


def test_incremental_plan_records_decisions_in_explain():
    plan = plan_for_strategy("incremental", EQ)
    query = parse_formula("F(x, y)")
    state = _state([(1, 2)])
    plan.execute(query, state)
    assert "answer cache miss" in plan.explain()
    plan.execute(query, state)
    assert "answer cache hit" in plan.explain()
    mutated = state.apply(Delta.insert("F", (4, 5)))
    plan.execute(query, mutated)
    assert "delta-maintained" in plan.explain()


def test_incremental_plan_shares_compiled_plan_cache_entries():
    from repro.engine.plan_cache import PlanCache

    cache = PlanCache(maxsize=8)
    query = parse_formula("F(x, y)")
    state = _state([(1, 2)])
    CompiledAlgebraPlan(domain=EQ, cache=cache).execute(query, state)
    plan = IncrementalAlgebraPlan(
        domain=EQ, cache=cache, answer_cache=AnswerCache()
    )
    plan.execute(query, state)
    assert cache.info().hits >= 1  # the incremental plan reused the entry


def test_incremental_session_end_to_end():
    session = connect("equality", SCHEMA, incremental=True)
    assert session.incremental
    state = session.state(F=[(1, 2), (2, 3)])
    query = "exists y. (F(x, y) & F(y, z))"
    first = session.run(query, state)
    assert first.answer.method == "incremental"
    assert set(first.answer.rows()) == {(1, 3)}

    mutated = session.apply_delta(state, Delta.insert("F", (3, 4)))
    assert mutated.version == 1
    second = session.run(query, mutated)
    assert set(second.answer.rows()) == {(1, 3), (2, 4)}
    assert "delta-maintained" in second.plan.explain()

    info = session.answer_cache_info()
    assert info.maintained == 1 and info.misses == 1


def test_incremental_session_delete_matches_reference():
    session = connect("equality", SCHEMA, incremental=True)
    state = session.state(F=[(1, 2), (2, 3), (3, 4)])
    query = "exists y. (F(x, y) & F(y, z))"
    assert set(session.query(query, state).rows()) == {(1, 3), (2, 4)}
    mutated = session.apply_delta(state, Delta.delete("F", (2, 3)))
    reference = connect("equality", SCHEMA).query(query, mutated)
    answer = session.query(query, mutated)
    assert set(answer.rows()) == set(reference.rows()) == set()


def test_non_incremental_session_has_no_answer_cache():
    session = connect("equality", SCHEMA)
    assert not session.incremental
    assert session.answer_cache is None
    with pytest.raises(Exception):
        session.answer_cache_info()


def test_apply_delta_noop_returns_same_state():
    session = connect("equality", SCHEMA, incremental=True)
    state = session.state(F=[(1, 2)])
    assert session.apply_delta(state, Delta.insert("F", (1, 2))) is state


# ---------------------------------------------------------------------------
# Serving layer: SessionManager.mutate and POST /mutate
# ---------------------------------------------------------------------------


def test_session_manager_mutate_updates_default_state():
    from repro.serve import SessionManager

    manager = SessionManager()
    try:
        managed = manager.connect(
            "equality", SCHEMA,
            state=DatabaseState(SCHEMA, {"F": [(1, 2)]}),
        )
        assert managed.session.incremental  # policy default
        receipt = manager.mutate(managed.session_id, Delta.insert("F", (2, 3)))
        assert receipt["applied"] and receipt["state_version"] == 1
        assert receipt["changed_rows"] == 1 and receipt["total_rows"] == 2
        result = manager.run_query(managed.session_id, "F(x, y)")
        assert set(result.answer.rows()) == {(1, 2), (2, 3)}
        assert managed.mutations_applied == 1
        assert managed.describe()["state_version"] == 1
        # a no-op mutation is reported, not applied
        receipt = manager.mutate(managed.session_id, Delta.insert("F", (2, 3)))
        assert not receipt["applied"] and receipt["changed_rows"] == 0
    finally:
        manager.shutdown()


def test_stats_report_answer_and_encode_cache_counters():
    from repro.serve import SessionManager

    manager = SessionManager()
    try:
        manager.connect("equality", SCHEMA)
        stats = manager.stats()
        assert "invalidated" in stats["encode_cache"]
        assert "grown_columns" in stats["encode_cache"]
    finally:
        manager.shutdown()


def _post(port, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def test_http_mutate_endpoint_round_trip():
    from repro.serve import serve_in_thread

    with serve_in_thread() as handle:
        port = handle.port
        connected = _post(port, "/connect", {
            "domain": "equality",
            "schema": {"F": 2},
            "state": {"F": [[1, 2], [2, 3]]},
        })
        sid = connected["session"]
        first = _post(port, "/query", {"session": sid, "query": "F(x, y)"})
        assert first["method"] == "incremental"

        receipt = _post(port, "/mutate", {
            "session": sid, "insert": {"F": [[3, 4]]},
        })
        assert receipt["applied"] and receipt["state_version"] == 1

        second = _post(port, "/query", {"session": sid, "query": "F(x, y)"})
        assert sorted(map(tuple, second["rows"])) == [(1, 2), (2, 3), (3, 4)]
        assert "delta-maintained" in second["plan"]

        receipt = _post(port, "/mutate", {
            "session": sid, "delete": {"F": [[1, 2]]},
        })
        assert receipt["applied"] and receipt["state_version"] == 2
        third = _post(port, "/query", {"session": sid, "query": "F(x, y)"})
        assert sorted(map(tuple, third["rows"])) == [(2, 3), (3, 4)]


def test_http_mutate_rejects_bad_payloads():
    from repro.serve import serve_in_thread

    with serve_in_thread() as handle:
        port = handle.port
        sid = _post(port, "/connect", {"domain": "equality", "schema": {"F": 2}})["session"]
        for payload in (
            {"insert": {"F": [[1, 2]]}},               # missing session
            {"session": sid, "insert": "not-a-dict"},  # malformed delta
            {"session": "nope", "insert": {"F": [[1, 2]]}},  # unknown session
        ):
            with pytest.raises(urllib.error.HTTPError):
                _post(port, "/mutate", payload)
