"""Tests for the vectorized NumPy columnar executor.

Four layers:

* kernel-level tests for :mod:`repro.relational.kernels` (sort-based join
  indices, membership masks, broadcast padding, zero-column tables);
* codec tests for :class:`repro.relational.columnar.ElementCodec`
  (int64 passthrough vs dictionary encoding of str/mixed/bignum carriers);
* property-style equivalence: for every registered domain pack that claims
  an algebra substrate, the vectorized executor, the set-at-a-time executor,
  and the tree-walking evaluator must return identical row sets over the
  pack's corpora and randomized states — including dictionary-encoded string
  carriers and empty relations (the corpora come from the pack registry, so
  a newly registered pack is covered without editing this file);
* planner/session integration: strategy ``"vectorized"`` selection, the
  extended plan-cache keys, and the recorded fallback ladder
  (vectorized → set executor → tree walker).
"""

import random

import pytest

# numpy is the library's optional accelerator: without it the vectorized
# executor falls back (covered by test_missing_numpy_falls_back_to_set_executor
# below, which never touches np); everything else here needs the real thing.
np = pytest.importorskip("numpy")

from repro import connect
from repro.domains import available_packs, get_pack
from repro.domains.equality import EqualityDomain
from repro.domains.presburger import PresburgerDomain
from repro.domains.successor import SuccessorDomain
from repro.engine.plans import (
    STRATEGIES,
    CompiledAlgebraPlan,
    GuardedPlan,
    VectorizedAlgebraPlan,
    plan_for_strategy,
)
from repro.experiments.corpora import (
    family_schema,
    family_state,
    numeric_state,
    presburger_sentences,
)
from repro.experiments.exp01_intro_queries import (
    grandfather_query,
    more_than_one_son_query,
    unsafe_disjunction_query,
    unsafe_negation_query,
)
from repro.logic.parser import parse_formula
from repro.relational import kernels
from repro.relational.calculus import evaluate_query_active_domain
from repro.relational.columnar import (
    ElementCodec,
    VectorizationError,
    run_plan_vectorized,
    vectorization_obstacle,
)
from repro.relational.compile import CompilationError, compile_query
from repro.relational.exec import (
    AdomScan,
    AttrRef,
    DomainCondition,
    Literal,
    Select,
    run_plan,
)
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.state import DatabaseState

EQ = EqualityDomain()
PRESBURGER = PresburgerDomain()
SUCCESSOR = SuccessorDomain()


def _family(rows):
    return DatabaseState(family_schema(), {"F": rows})


def _assert_three_way_equivalent(query, state, domain):
    """Vectorized, set-at-a-time, and tree-walking answers must coincide."""
    expected = evaluate_query_active_domain(query, state, interpretation=domain)
    compiled = compile_query(query, state.schema, domain)
    set_rows = compiled.execute(state, domain).rows
    vec_rows = run_plan_vectorized(
        compiled.plan, state, compiled.universe(state), domain
    )
    assert set_rows == expected.rows
    assert vec_rows == expected.rows, (
        f"vectorized {sorted(vec_rows)} != tree-walk {sorted(expected.rows)} "
        f"for {query} in {state}"
    )


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def test_join_indices_matches_nested_loop_join():
    rng = random.Random(5)
    for _ in range(20):
        left = np.array(
            [[rng.randrange(4), rng.randrange(4)] for _ in range(rng.randrange(0, 9))],
            dtype=np.int64,
        ).reshape(-1, 2)
        right = np.array(
            [[rng.randrange(4), rng.randrange(4)] for _ in range(rng.randrange(0, 9))],
            dtype=np.int64,
        ).reshape(-1, 2)
        li, ri = kernels.join_indices(left, right)
        got = sorted(zip(li.tolist(), ri.tolist()))
        want = sorted(
            (i, j)
            for i in range(left.shape[0])
            for j in range(right.shape[0])
            if (left[i] == right[j]).all()
        )
        assert got == want


def test_join_indices_zero_column_keys_are_a_cross_product():
    left = np.zeros((3, 0), dtype=np.int64)
    right = np.zeros((2, 0), dtype=np.int64)
    li, ri = kernels.join_indices(left, right)
    assert sorted(zip(li.tolist(), ri.tolist())) == [
        (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1),
    ]


def test_membership_mask_matches_python_membership():
    left = np.array([[1, 2], [3, 4], [1, 9]], dtype=np.int64)
    right = np.array([[1, 2], [7, 7]], dtype=np.int64)
    assert kernels.membership_mask(left, right).tolist() == [True, False, False]
    empty = np.empty((0, 2), dtype=np.int64)
    assert kernels.membership_mask(left, empty).tolist() == [False, False, False]
    assert kernels.membership_mask(empty, right).tolist() == []


def test_unique_rows_and_zero_column_tables():
    table = np.array([[1, 2], [1, 2], [0, 0]], dtype=np.int64)
    assert kernels.unique_rows(table).tolist() == [[0, 0], [1, 2]]
    unit = np.zeros((4, 0), dtype=np.int64)
    assert kernels.unique_rows(unit).shape == (1, 0)
    assert kernels.unique_rows(kernels.empty_table(0)).shape == (0, 0)


def test_cross_pad_arrays_broadcasts_every_value():
    table = np.array([[5]], dtype=np.int64)
    values = np.array([1, 2, 3], dtype=np.int64)
    assert kernels.cross_pad_arrays(table, values).tolist() == [[5, 1], [5, 2], [5, 3]]
    none = kernels.cross_pad_arrays(kernels.empty_table(1), values)
    assert none.shape == (0, 2)


# ---------------------------------------------------------------------------
# Element codec
# ---------------------------------------------------------------------------


def test_codec_is_passthrough_for_machine_integers():
    codec = ElementCodec.for_universe([0, 5, -3])
    assert codec.numeric
    assert codec.encode(5) == 5 and codec.decode(-3) == -3
    assert codec.encode_rows([(0, 5)], 2).tolist() == [[0, 5]]


def test_codec_dictionary_encodes_strings_and_mixed_carriers():
    codec = ElementCodec.for_universe(["eve", "adam", 3])
    assert not codec.numeric
    for element in ("eve", "adam", 3):
        assert codec.decode(codec.encode(element)) == element
    # distinct elements get distinct codes
    assert len({codec.encode(e) for e in ("eve", "adam", 3)}) == 3
    with pytest.raises(VectorizationError):
        codec.encode("snake")


def test_codec_dictionary_encodes_bignums_beyond_int64():
    big = 2 ** 80
    codec = ElementCodec.for_universe([1, big])
    assert not codec.numeric
    assert codec.decode(codec.encode(big)) == big


def test_domain_predicates_fall_back_on_dictionary_carriers():
    schema = DatabaseSchema((RelationSchema("S", 1, ("value",)),))
    state = DatabaseState(schema, {"S": [("a",), ("b",)]})
    query = parse_formula("exists y. (S(y) & x < y)")
    compiled = compile_query(query, schema, PRESBURGER)
    with pytest.raises(VectorizationError, match="dictionary-encoded"):
        run_plan_vectorized(compiled.plan, state, ["a", "b"], PRESBURGER)


def test_vectorization_obstacle_flags_unvectorizable_predicates():
    assert vectorization_obstacle(AdomScan(("x",))) is None
    probe = Select(
        Literal(("x",), ()),
        (DomainCondition("divides", (AttrRef("x"), AttrRef("x"))),),
        ("x",),
    )
    assert "divides" in vectorization_obstacle(probe)


# ---------------------------------------------------------------------------
# Property-style equivalence over the experiment query corpora
# ---------------------------------------------------------------------------

_FAMILY_QUERIES = [
    ("M", more_than_one_son_query()),
    ("G", grandfather_query()),
    ("~F", unsafe_negation_query()),
    ("M|G", unsafe_disjunction_query()),
]


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("name,query", _FAMILY_QUERIES, ids=lambda v: str(v))
def test_property_family_queries_three_way(seed, name, query):
    rng = random.Random(4000 + seed)
    rows = {(rng.randrange(7), rng.randrange(7)) for _ in range(rng.randrange(0, 10))}
    _assert_three_way_equivalent(query, _family(rows), EQ)


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("name,query", _FAMILY_QUERIES, ids=lambda v: str(v))
def test_property_family_queries_on_string_carriers(seed, name, query):
    # Person identifiers as strings: the codec must dictionary-encode and the
    # answers must still match both scalar substrates exactly.
    names = ["adam", "bala", "cain", "dana", "enos", "eve"]
    rng = random.Random(5000 + seed)
    rows = {(rng.choice(names), rng.choice(names)) for _ in range(rng.randrange(0, 10))}
    _assert_three_way_equivalent(query, _family(rows), EQ)


@pytest.mark.parametrize("name,query", _FAMILY_QUERIES, ids=lambda v: str(v))
def test_property_family_queries_on_empty_relations(name, query):
    _assert_three_way_equivalent(query, _family([]), EQ)


def _substrate_pack_names():
    """Packs claiming an algebra substrate, from the registry — not a list."""
    return [
        name for name in available_packs()
        if get_pack(name).supports_compiled_algebra
        or get_pack(name).supports_vectorized
    ]


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("pack_name", _substrate_pack_names())
def test_property_pack_corpora_three_way(pack_name, seed):
    """Every pack corpus agrees across the whole substrate ladder.

    The plans fall back transparently (vectorized → set executor → tree
    walker), so every query is comparable even when a particular plan or
    carrier resists compilation or vectorization.
    """
    pack = get_pack(pack_name)
    domain = pack.factory()
    extras = tuple(domain.carrier_elements()) if pack.finite_carrier else ()
    checked = 0
    for corpus in pack.corpora():
        states = [corpus.canonical_state]
        if corpus.state_factory is not None:
            rng = random.Random(f"columnar/{pack_name}/{corpus.name}/{seed}")
            states.append(corpus.state_factory(rng, rng.randrange(0, 8)))
        for state in states:
            for pq in corpus.queries:
                expected = evaluate_query_active_domain(
                    pq.query, state, interpretation=domain, extra_elements=extras
                )
                for plan in (
                    CompiledAlgebraPlan(domain=domain, extra_elements=extras),
                    VectorizedAlgebraPlan(domain=domain, extra_elements=extras),
                ):
                    answer = plan.execute(pq.query, state)
                    assert set(answer.rows()) == expected.rows, (
                        f"{plan.strategy} disagrees with the tree walker on "
                        f"{pack_name}/{corpus.name}/{pq.name}"
                    )
                    if plan.fallback_reason is not None:
                        assert "fell back" in plan.explain()
                    checked += 1
    assert checked > 0


@pytest.mark.parametrize(
    "name,sentence",
    [(name, sentence) for name, sentence, _truth in presburger_sentences()],
    ids=lambda v: str(v),
)
def test_property_presburger_sentences_three_way(name, sentence):
    # Sentences with ``+`` bail out of compilation before vectorization is
    # even attempted; the rest must agree with both scalar substrates under
    # active-domain semantics.
    state = numeric_state([1, 4, 9])
    try:
        compile_query(sentence, state.schema, PRESBURGER)
    except CompilationError:
        return
    _assert_three_way_equivalent(sentence, state, PRESBURGER)


def test_succ_terms_fall_back_to_the_tree_walker():
    # Successor queries lean on ``succ`` terms, which never compile; the
    # vectorized plan must fall all the way back to the tree walker and
    # return the identical row set, with the reason recorded.  (The full
    # successor corpus runs through test_property_pack_corpora_three_way.)
    query = parse_formula("exists y. (S(y) & x = succ(y))")
    state = numeric_state([2, 3])  # succ(2) = 3 is in the active domain
    expected = evaluate_query_active_domain(query, state, interpretation=SUCCESSOR)
    plan = VectorizedAlgebraPlan(domain=SUCCESSOR)
    answer = plan.execute(query, state)
    assert set(answer.rows()) == expected.rows == {(3,)}
    assert answer.method == "active-domain"
    assert "fell back" in plan.explain()


# ---------------------------------------------------------------------------
# Planner and session integration
# ---------------------------------------------------------------------------


def test_vectorized_strategy_is_registered():
    assert "vectorized" in STRATEGIES
    plan = plan_for_strategy("vectorized", EqualityDomain())
    assert isinstance(plan, VectorizedAlgebraPlan)
    assert plan.strategy == "vectorized"


def test_auto_prefers_vectorized_over_compiled_for_equality():
    session = connect("eq", family_schema())
    plan = session.plan()
    assert isinstance(plan, GuardedPlan)
    assert isinstance(plan.inner, VectorizedAlgebraPlan)
    state = family_state(generations=3)
    result = session.run("exists y. (F(x, y) & F(y, z))", state)
    assert result.answer.method == "vectorized"
    assert "vectorized" in result.plan.inner.explain()


def test_explicit_vectorized_strategy_reports_and_answers():
    session = connect("eq", family_schema())
    plan = session.plan("vectorized")
    assert isinstance(plan, VectorizedAlgebraPlan)
    state = family_state(generations=2)
    answer = session.execute(plan, "F(x, y)", state)
    assert answer.method == "vectorized"
    assert plan.fallback_reason is None
    assert "strategy 'vectorized'" in plan.explain()


def test_plan_cache_keys_separate_compiled_and_vectorized_substrates():
    session = connect("eq", family_schema())
    state = family_state(generations=1)
    session.query("F(x, y)", state, strategy="vectorized")
    session.query("F(x, y)", state, strategy="compiled")
    info = session.plan_cache_info()
    assert info.size == 2 and info.misses == 2
    session.query("F(x, y)", state, strategy="vectorized")
    assert session.plan_cache_info().hits == 1


def test_traces_fallback_is_recorded_in_explain():
    schema = DatabaseSchema((RelationSchema("W", 1, ("word",)),))
    session = connect("traces", schema)
    plan = session.plan("vectorized")
    state = session.state(W=[("1",), ("11",)])
    answer = session.execute(plan, "W(x) & P(x, x, x)", state)
    # The trace-domain predicate P has no vectorized kernel: execution falls
    # back to the set-at-a-time executor and explains itself.
    assert answer.method == "compiled-algebra"
    assert "P" in plan.fallback_reason
    assert "fell back" in plan.explain()
    # The answer still matches the tree walker.
    expected = evaluate_query_active_domain(
        session.compile("W(x) & P(x, x, x)"), state, interpretation=session.domain
    )
    assert set(answer.rows()) == expected.rows


def test_missing_numpy_falls_back_to_set_executor(monkeypatch):
    # Simulate a numpy-less install: the static obstacle fires before any
    # array code runs, and the plan answers via the set executor.
    import repro.relational.columnar as columnar

    monkeypatch.setattr(columnar, "HAVE_NUMPY", False)
    assert vectorization_obstacle(AdomScan(("x",))) == "numpy is not installed"
    plan = VectorizedAlgebraPlan(domain=EQ)
    state = family_state(generations=2)
    answer = plan.execute(parse_formula("F(x, y)"), state)
    assert answer.method == "compiled-algebra"
    assert "numpy is not installed" in plan.fallback_reason
    assert set(answer.rows()) == state["F"].rows


def test_vectorized_plan_respects_extra_elements():
    state = family_state(generations=2)
    query = parse_formula("~F(x, y)")
    walker_rows = CompiledAlgebraPlan(
        domain=EQ, extra_elements=(99,)
    ).execute(query, state).rows()
    vectorized_rows = VectorizedAlgebraPlan(
        domain=EQ, extra_elements=(99,)
    ).execute(query, state).rows()
    assert vectorized_rows == walker_rows
