"""Tests for traces, the predicate P, trace counting, and word classification."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.turing.builders import (
    halt_if_marked_else_loop,
    halt_immediately,
    loop_forever,
    prefix_reader,
    unary_eraser,
)
from repro.turing.encoding import encode_machine
from repro.turing.traces import (
    classify_word,
    has_at_least_traces,
    has_exactly_traces,
    holds_P,
    input_of_trace,
    is_trace_word,
    machine_of_trace,
    parse_trace,
    trace_count,
    trace_of,
    traces_of,
)
from repro.turing.words import WordSort, is_input_word, is_machine_word

ERASER = encode_machine(unary_eraser())
LOOPER = encode_machine(loop_forever())
HALTER = encode_machine(halt_immediately())
PICKY = encode_machine(halt_if_marked_else_loop())


def test_trace_of_shapes():
    first = trace_of(ERASER, "11", 1)
    assert first is not None and first.startswith(ERASER + "|")
    assert trace_of(ERASER, "11", 0) is None
    # the eraser halts after 2 steps on "11": 3 snapshots exist, not 4
    assert trace_of(ERASER, "11", 3) is not None
    assert trace_of(ERASER, "11", 4) is None
    # a diverging machine has traces of every length
    assert trace_of(LOOPER, "1", 25) is not None


def test_trace_count_and_predicates():
    assert trace_count(ERASER, "11", fuel=100) == 3
    assert trace_count(HALTER, "111", fuel=100) == 1
    assert trace_count(LOOPER, "1", fuel=50) is None
    assert has_at_least_traces(ERASER, "11", 3)
    assert not has_at_least_traces(ERASER, "11", 4)
    assert has_exactly_traces(ERASER, "11", 3)
    assert not has_exactly_traces(ERASER, "11", 2)
    assert has_at_least_traces(LOOPER, "1", 100)
    assert not has_exactly_traces(LOOPER, "1", 5)
    assert has_at_least_traces(ERASER, "11", 0)
    assert not has_exactly_traces(ERASER, "11", 0)


def test_traces_of_enumerates_prefix_closed_set():
    traces = list(traces_of(ERASER, "11", max_snapshots=10))
    assert len(traces) == 3
    assert len(set(traces)) == 3
    for count, trace in enumerate(traces, start=1):
        assert trace == trace_of(ERASER, "11", count)


def test_holds_P_matches_generated_traces():
    for trace in traces_of(ERASER, "1&1", max_snapshots=5):
        assert holds_P(ERASER, "1&1", trace)
        assert not holds_P(LOOPER, "1&1", trace)
        assert not holds_P(ERASER, "11", trace)
    assert not holds_P(ERASER, "1&1", "garbage")
    assert not holds_P("111", "1", trace_of(ERASER, "1", 1))  # not a machine word


def test_parse_trace_and_extractors():
    trace = trace_of(PICKY, "&1", 4)
    parsed = parse_trace(trace)
    assert parsed == (PICKY, "&1", 4)
    assert machine_of_trace(trace) == PICKY
    assert input_of_trace(trace) == "&1"
    assert machine_of_trace("not a trace") == ""
    assert input_of_trace("") == ""


def test_traces_distinguish_input_words():
    # the input word is embedded verbatim in the first snapshot, so traces on
    # different (even blank-padded) inputs are different words
    t_short = trace_of(HALTER, "1", 1)
    t_padded = trace_of(HALTER, "1&", 1)
    assert t_short != t_padded
    assert input_of_trace(t_short) == "1"
    assert input_of_trace(t_padded) == "1&"


def test_classify_word_partitions():
    assert classify_word(ERASER) is WordSort.MACHINE
    assert classify_word("1&1") is WordSort.INPUT
    assert classify_word("") is WordSort.INPUT
    assert classify_word(trace_of(ERASER, "1", 1)) is WordSort.TRACE
    assert classify_word("|||") is WordSort.OTHER
    assert classify_word("*|") is WordSort.OTHER
    assert classify_word(ERASER + "|garbage") is WordSort.OTHER


def test_is_trace_word_rejects_corrupted_traces():
    trace = trace_of(ERASER, "11", 2)
    assert is_trace_word(trace)
    assert not is_trace_word(trace + "1")
    assert not is_trace_word(trace[:-1])
    assert not is_trace_word(LOOPER + "|" + trace.split("|", 1)[1])


# --- property-based: P holds exactly for generated traces --------------------

machine_words = st.sampled_from([ERASER, LOOPER, HALTER, PICKY,
                                 encode_machine(prefix_reader("1&"))])
input_words = st.text(alphabet="1&", max_size=4)


@settings(max_examples=120, deadline=None)
@given(machine_words, input_words, st.integers(1, 6))
def test_generated_traces_satisfy_P_property(machine_word, input_word, snapshots):
    trace = trace_of(machine_word, input_word, snapshots)
    if trace is None:
        # the machine halted earlier: the exact count must be below `snapshots`
        count = trace_count(machine_word, input_word, fuel=snapshots + 2)
        assert count is not None and count < snapshots
    else:
        assert holds_P(machine_word, input_word, trace)
        assert classify_word(trace) is WordSort.TRACE
        assert machine_of_trace(trace) == machine_word
        assert input_of_trace(trace) == input_word


@settings(max_examples=80, deadline=None)
@given(machine_words, input_words, st.integers(1, 5), st.integers(1, 5))
def test_trace_counts_monotone_property(machine_word, input_word, lower, higher):
    if lower > higher:
        lower, higher = higher, lower
    if has_at_least_traces(machine_word, input_word, higher):
        assert has_at_least_traces(machine_word, input_word, lower)
