"""Unit tests for repro.logic.formulas and repro.logic.analysis."""

from repro.logic.analysis import (
    all_variables,
    atoms_of,
    bound_variables,
    constants_of,
    formula_size,
    free_variables,
    functions_of,
    predicates_of,
    quantifier_depth,
)
from repro.logic.builders import apply, atom, conj, disj, eq, exists, forall, neg, var
from repro.logic.formulas import (
    BOTTOM,
    TOP,
    And,
    Atom,
    Equals,
    Exists,
    ForAll,
    Not,
    Or,
    is_atomic,
    is_literal,
    is_quantifier_free,
    walk_formulas,
)
from repro.logic.terms import Const, Var


def sample_formula():
    return exists("y", conj(atom("F", var("x"), var("y")), neg(eq(var("x"), Const(3)))))


def test_walk_formulas_counts_nodes():
    formula = sample_formula()
    nodes = list(walk_formulas(formula))
    assert nodes[0] == formula
    assert formula_size(formula) == len(nodes)


def test_free_and_bound_variables():
    formula = sample_formula()
    assert free_variables(formula) == frozenset({Var("x")})
    assert bound_variables(formula) == frozenset({Var("y")})
    assert all_variables(formula) == frozenset({Var("x"), Var("y")})


def test_free_variables_of_quantified_sentence_empty():
    sentence = forall("x", exists("y", atom("R", var("x"), var("y"))))
    assert free_variables(sentence) == frozenset()


def test_constants_predicates_functions():
    formula = conj(atom("P", apply("f", var("x")), Const(2)), eq(Const("w"), var("y")))
    assert constants_of(formula) == frozenset({Const(2), Const("w")})
    assert predicates_of(formula) == frozenset({"P"})
    assert functions_of(formula) == frozenset({"f"})


def test_quantifier_depth():
    assert quantifier_depth(atom("P", var("x"))) == 0
    assert quantifier_depth(exists("x", atom("P", var("x")))) == 1
    nested = forall("x", conj(exists("y", atom("R", var("x"), var("y"))),
                              exists("z", exists("w", atom("R", var("z"), var("w"))))))
    assert quantifier_depth(nested) == 3


def test_is_quantifier_free_literal_atomic():
    assert is_quantifier_free(conj(atom("P", var("x")), neg(eq(var("x"), var("y")))))
    assert not is_quantifier_free(sample_formula())
    assert is_atomic(atom("P", var("x")))
    assert is_atomic(TOP) and is_atomic(BOTTOM)
    assert is_literal(neg(atom("P", var("x"))))
    assert not is_literal(conj(atom("P", var("x")), atom("Q", var("x"))))


def test_atoms_of():
    formula = sample_formula()
    atoms = atoms_of(formula)
    assert any(isinstance(a, Atom) and a.predicate == "F" for a in atoms)
    assert any(isinstance(a, Equals) for a in atoms)


def test_formula_hashability_and_equality():
    f1 = sample_formula()
    f2 = sample_formula()
    assert f1 == f2
    assert hash(f1) == hash(f2)
    assert len({f1, f2}) == 1


def test_nary_connectives_store_tuples():
    formula = And((atom("P", var("x")), atom("Q", var("x"))))
    assert isinstance(formula.conjuncts, tuple)
    formula = Or((atom("P", var("x")), atom("Q", var("x"))))
    assert isinstance(formula.disjuncts, tuple)
