"""Shared test configuration: per-pack pytest markers.

Every registered domain pack contributes a ``pack_<marker>`` mark (e.g.
``pack_qlinear`` for the dense-linear-order pack), applied automatically to
any test whose id mentions the pack's canonical name or an alias — so
``pytest -m pack_qlinear`` runs exactly the registry-parametrized tests that
exercise that pack.
"""

import pytest

from repro.domains import domain_aliases, get_pack
from repro.domains.packs import available_packs


def _pack_markers():
    """canonical name -> marker slug, plus alias -> marker slug."""
    markers = {}
    for name in available_packs():
        markers[name] = get_pack(name).marker or name
    for alias, canonical in domain_aliases().items():
        if canonical in markers:
            markers.setdefault(alias, markers[canonical])
    return markers


def pytest_configure(config):
    seen = set()
    for marker in _pack_markers().values():
        if marker not in seen:
            seen.add(marker)
            config.addinivalue_line(
                "markers",
                f"pack_{marker}: tests exercising the {marker} domain pack",
            )


def pytest_collection_modifyitems(config, items):
    markers = _pack_markers()
    for item in items:
        if "[" not in item.name:
            continue
        params = item.name[item.name.index("[") + 1:].rstrip("]")
        for token in params.split("-"):
            marker = markers.get(token.lower())
            if marker is not None:
                item.add_marker(getattr(pytest.mark, f"pack_{marker}"))
