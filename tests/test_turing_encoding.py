"""Tests for the machine-word encoding, including a hypothesis round-trip."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.turing.builders import loop_forever, unary_eraser, unary_successor
from repro.turing.encoding import (
    EMPTY_MACHINE_WORD,
    canonical_machine_word,
    decode_machine,
    encode_machine,
)
from repro.turing.machine import Transition, TuringMachine, run_machine
from repro.turing.tape import BLANK, MARK
from repro.turing.words import is_machine_word


def test_encode_produces_machine_words():
    for builder in (loop_forever, unary_eraser, unary_successor):
        word = encode_machine(builder())
        assert is_machine_word(word)


def test_empty_machine_round_trip():
    assert encode_machine(TuringMachine({})) == EMPTY_MACHINE_WORD
    decoded = decode_machine(EMPTY_MACHINE_WORD)
    assert len(decoded) == 0


def test_round_trip_preserves_transitions():
    machine = unary_successor()
    decoded = decode_machine(encode_machine(machine))
    assert decoded.transitions == machine.transitions


def test_decode_rejects_non_machine_words():
    with pytest.raises(ValueError):
        decode_machine("111")          # an input word, no delimiter
    with pytest.raises(ValueError):
        decode_machine("1|1*")         # contains the trace separator


def test_malformed_encodings_decode_to_empty_machine():
    assert len(decode_machine("1111*")) == 0          # wrong field count
    assert len(decode_machine("1&1&1&1&1111*")) == 0  # bad move code
    assert len(decode_machine("*1")) == 0             # trailing garbage
    # behaviour: the empty machine halts immediately everywhere
    result = run_machine(decode_machine("1111*"), "111", fuel=5)
    assert result.halted and result.steps == 0


def test_canonical_machine_word_idempotent():
    word = encode_machine(unary_eraser())
    assert canonical_machine_word(word) == word
    assert canonical_machine_word("1111*") == EMPTY_MACHINE_WORD


transitions_strategy = st.dictionaries(
    keys=st.tuples(st.integers(1, 4), st.sampled_from([MARK, BLANK])),
    values=st.builds(
        Transition,
        next_state=st.integers(1, 4),
        write=st.sampled_from([MARK, BLANK]),
        move=st.sampled_from(["L", "S", "R"]),
    ),
    max_size=6,
)


@settings(max_examples=100, deadline=None)
@given(transitions_strategy)
def test_encode_decode_round_trip_property(transitions):
    machine = TuringMachine(transitions)
    word = encode_machine(machine)
    assert is_machine_word(word)
    assert decode_machine(word).transitions == machine.transitions
