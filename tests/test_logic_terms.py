"""Unit tests for repro.logic.terms."""

import pytest

from repro.logic.terms import (
    Apply,
    Const,
    Var,
    is_ground,
    term_constants,
    term_functions,
    term_size,
    term_variables,
    walk_terms,
)


def test_var_equality_and_ordering():
    assert Var("x") == Var("x")
    assert Var("x") != Var("y")
    assert Var("a") < Var("b")


def test_const_holds_int_and_str():
    assert Const(3).value == 3
    assert Const("abc").value == "abc"
    assert Const(3) != Const("3")


def test_apply_args_are_tuples():
    term = Apply("f", [Var("x"), Const(1)])
    assert isinstance(term.args, tuple)
    assert term.args == (Var("x"), Const(1))


def test_walk_terms_preorder():
    term = Apply("f", (Var("x"), Apply("g", (Const(2),))))
    nodes = list(walk_terms(term))
    assert nodes[0] == term
    assert Var("x") in nodes
    assert Const(2) in nodes
    assert len(nodes) == 4


def test_term_variables_and_constants():
    term = Apply("f", (Var("x"), Apply("g", (Const(2), Var("y")))))
    assert term_variables(term) == frozenset({Var("x"), Var("y")})
    assert term_constants(term) == frozenset({Const(2)})
    assert term_functions(term) == frozenset({"f", "g"})


def test_is_ground():
    assert is_ground(Const(5))
    assert is_ground(Apply("f", (Const(1), Const(2))))
    assert not is_ground(Var("x"))
    assert not is_ground(Apply("f", (Var("x"),)))


def test_term_size():
    assert term_size(Var("x")) == 1
    assert term_size(Apply("f", (Var("x"), Const(1)))) == 3


def test_terms_are_hashable():
    collection = {Var("x"), Const(1), Apply("f", (Var("x"),))}
    assert len(collection) == 3
    assert Apply("f", (Var("x"),)) in collection


def test_str_representations():
    assert str(Var("x")) == "x"
    assert str(Const(3)) == "3"
    assert str(Apply("f", (Var("x"), Const(1)))) == "f(x, 1)"
