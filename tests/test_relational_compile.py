"""Tests for the compiled relational-algebra backend.

Three layers:

* operator-level tests for :mod:`repro.relational.exec` (fused scans, hash
  joins, antijoins, padding);
* compiler tests for :mod:`repro.relational.compile` (plan shapes, bail-out
  conditions, edge-case semantics);
* property-style equivalence tests: for every experiment query corpus in
  :mod:`repro.experiments`, compiled execution and the tree-walking
  active-domain evaluator must return identical row sets over randomized
  small states.
"""

import random

import pytest

from repro.domains.equality import EqualityDomain
from repro.domains.presburger import PresburgerDomain
from repro.domains.successor import SuccessorDomain
from repro.engine.plan_cache import PlanCache
from repro.engine.plans import CompiledAlgebraPlan
from repro.experiments.corpora import (
    family_schema,
    family_state,
    numeric_schema,
    numeric_state,
    ordered_query_corpus,
    presburger_sentences,
    successor_query_corpus,
)
from repro.experiments.exp01_intro_queries import (
    grandfather_query,
    more_than_one_son_query,
    unsafe_disjunction_query,
    unsafe_negation_query,
)
from repro.logic.parser import parse_formula
from repro.relational.calculus import evaluate_query_active_domain
from repro.relational.compile import CompilationError, compile_query
from repro.relational.exec import (
    AdomScan,
    AntiJoin,
    AttrRef,
    Comparison,
    CrossPad,
    Join,
    Literal,
    Scan,
    Select,
    run_plan,
)
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.state import DatabaseState

EQ = EqualityDomain()
PRESBURGER = PresburgerDomain()
SUCCESSOR = SuccessorDomain()


def _family(rows):
    return DatabaseState(family_schema(), {"F": rows})


def _assert_equivalent(query, state, domain):
    """Compiled execution must agree with the tree-walking evaluator."""
    expected = evaluate_query_active_domain(query, state, interpretation=domain)
    compiled = compile_query(query, state.schema, domain)
    actual = compiled.execute(state, domain)
    assert actual.rows == expected.rows, (
        f"compiled {sorted(actual.rows)} != tree-walk {sorted(expected.rows)} "
        f"for {query} in {state}"
    )


# ---------------------------------------------------------------------------
# Operator-level executor tests
# ---------------------------------------------------------------------------


def test_scan_fuses_constant_and_repeated_variable_filters():
    state = _family([(0, 1), (0, 0), (2, 2), (2, 3)])
    diagonal = Scan("F", ("x", "x"), (), ("x",))
    assert run_plan(diagonal, state, [0, 1, 2, 3], EQ) == {(0,), (2,)}
    anchored = Scan("F", (None, "y"), ((0, 2),), ("y",))
    assert run_plan(anchored, state, [0, 1, 2, 3], EQ) == {(2,), (3,)}


def test_hash_join_reorders_output_to_declared_attrs():
    left = Literal(("a", "b"), ((1, 2), (3, 4)))
    right = Literal(("b", "c"), ((2, 5), (2, 6), (9, 9)))
    join = Join((left, right), ("c", "a", "b"))
    state = _family([])
    assert run_plan(join, state, [], EQ) == {(5, 1, 2), (6, 1, 2)}


def test_antijoin_keeps_unmatched_left_rows():
    left = Literal(("a", "b"), ((1, 2), (3, 4), (5, 6)))
    right = Literal(("b",), ((4,), (7,)))
    anti = AntiJoin(left, right, ("a", "b"))
    assert run_plan(anti, _family([]), [], EQ) == {(1, 2), (5, 6)}


def test_antijoin_with_disjoint_attrs_acts_as_sentence_guard():
    left = Literal(("a",), ((1,), (2,)))
    anti_true = AntiJoin(left, Literal((), ((),)), ("a",))
    anti_false = AntiJoin(left, Literal((), ()), ("a",))
    assert run_plan(anti_true, _family([]), [], EQ) == set()
    assert run_plan(anti_false, _family([]), [], EQ) == {(1,), (2,)}


def test_cross_pad_and_adom_scan_range_over_the_universe():
    pad = CrossPad(Literal(("a",), ((7,),)), ("b",), ("a", "b"))
    assert run_plan(pad, _family([]), [1, 2], EQ) == {(7, 1), (7, 2)}
    assert run_plan(AdomScan(("x",)), _family([]), [4, 5], EQ) == {(4,), (5,)}


def test_select_supports_negated_comparisons():
    source = Literal(("a", "b"), ((1, 1), (1, 2)))
    select = Select(
        source, (Comparison(AttrRef("a"), AttrRef("b"), negated=True),), ("a", "b")
    )
    assert run_plan(select, _family([]), [], EQ) == {(1, 2)}


# ---------------------------------------------------------------------------
# Compiler behaviour
# ---------------------------------------------------------------------------


def test_conjunction_compiles_to_scans_and_a_join():
    compiled = compile_query(grandfather_query(), family_schema(), EQ)
    summary = compiled.summary()
    assert "2 scans" in summary and "1 join" in summary
    assert compiled.output == ("x", "z")


def test_negated_conjunct_compiles_to_an_antijoin():
    query = parse_formula("F(x, y) & ~F(y, x)")
    compiled = compile_query(query, family_schema(), EQ)
    assert "antijoin" in compiled.summary()
    state = _family([(0, 1), (1, 0), (1, 2)])
    assert compiled.execute(state, EQ).rows == {(1, 2)}


def test_bare_negation_compiles_to_difference_against_the_active_domain():
    compiled = compile_query(unsafe_negation_query(), family_schema(), EQ)
    state = _family([(0, 1)])
    assert compiled.execute(state, EQ).rows == {(0, 0), (1, 0), (1, 1)}


def test_function_symbols_bail_out():
    query = parse_formula("x = succ(0)")
    with pytest.raises(CompilationError):
        compile_query(query, numeric_schema(), SUCCESSOR)


def test_unknown_predicates_bail_out():
    query = parse_formula("Mystery(x)")
    with pytest.raises(CompilationError):
        compile_query(query, family_schema(), EQ)


def test_arity_mismatch_compiles_to_the_empty_relation():
    schema = DatabaseSchema((RelationSchema("F", 2),))
    query = parse_formula("F(x, y, z)")
    compiled = compile_query(query, schema, EQ)
    state = DatabaseState(schema, {"F": [(0, 1)]})
    assert compiled.execute(state, EQ).rows == set()
    _assert_equivalent(query, state, EQ)


@pytest.mark.parametrize(
    "text",
    [
        "x = x",                      # requires the variable to range over adom
        "~(x = x)",                   # unsatisfiable, but keeps the column
        "x = 3",                      # anchored variable
        "~(x = 3)",                   # negated anchor forces an adom pad
        "x = y",                      # diagonal
        "F(x, y) & x = y",            # pushdown onto the scan
        "F(x, y) & ~(x = y)",         # negated pushdown
        "F(x, y) | F(y, x)",          # union with aligned attributes
        "exists y. F(x, y)",          # projection
        "forall y. F(x, y)",          # double difference
        "F(x, y) -> F(y, x)",         # implication desugaring
        "F(x, y) <-> F(y, x)",        # biconditional desugaring
        "exists y. true",             # vacuous quantifier needs a witness
        "F(1, x)",                    # constant argument
        "F(x, x)",                    # repeated variable
        "(exists y. F(x, y)) & (exists y. F(y, x))",  # bound-name reuse
    ],
)
def test_edge_case_formulas_match_the_tree_walker(text):
    query = parse_formula(text)
    rng = random.Random(13)
    for _ in range(4):
        rows = {(rng.randrange(5), rng.randrange(5)) for _ in range(rng.randrange(0, 7))}
        _assert_equivalent(query, _family(rows), EQ)


def test_empty_state_and_empty_active_domain_edge_cases():
    for text in ("exists x. true", "forall x. false", "forall x. F(x, x)",
                 "~(exists x. F(x, x))"):
        _assert_equivalent(parse_formula(text), _family([]), EQ)


# ---------------------------------------------------------------------------
# Property-style equivalence over the experiment query corpora
# ---------------------------------------------------------------------------

_FAMILY_QUERIES = [
    ("M", more_than_one_son_query()),
    ("G", grandfather_query()),
    ("~F", unsafe_negation_query()),
    ("M|G", unsafe_disjunction_query()),
]


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("name,query", _FAMILY_QUERIES, ids=lambda v: str(v))
def test_property_family_queries_match_tree_walker(seed, name, query):
    rng = random.Random(1000 + seed)
    rows = {(rng.randrange(7), rng.randrange(7)) for _ in range(rng.randrange(0, 10))}
    _assert_equivalent(query, _family(rows), EQ)


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize(
    "name,query",
    [(name, query) for name, query, _finite in ordered_query_corpus()],
    ids=lambda v: str(v),
)
def test_property_ordered_corpus_matches_tree_walker(seed, name, query):
    rng = random.Random(2000 + seed)
    values = [rng.randrange(0, 15) for _ in range(rng.randrange(0, 6))]
    _assert_equivalent(query, numeric_state(values), PRESBURGER)


@pytest.mark.parametrize(
    "name,sentence",
    [(name, sentence) for name, sentence, _truth in presburger_sentences()],
    ids=lambda v: str(v),
)
def test_property_presburger_sentences_match_tree_walker(name, sentence):
    # Sentences with ``+`` bail out of compilation; the rest must agree with
    # the tree walker under active-domain semantics (NOT the true Presburger
    # semantics — both substrates quantify over the finite active domain).
    state = numeric_state([1, 4, 9])
    try:
        compiled = compile_query(sentence, state.schema, PRESBURGER)
    except CompilationError:
        return
    expected = evaluate_query_active_domain(sentence, state, interpretation=PRESBURGER)
    assert compiled.execute(state, PRESBURGER).rows == expected.rows


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize(
    "name,query",
    [(name, query) for name, query, _finite in successor_query_corpus()],
    ids=lambda v: str(v),
)
def test_property_successor_corpus_via_plan_fallback(seed, name, query):
    # Successor queries lean on ``succ`` terms, which have no algebra
    # translation; the plan must fall back to the tree walker transparently
    # and still return the identical row set.
    rng = random.Random(3000 + seed)
    values = [rng.randrange(0, 9) for _ in range(rng.randrange(0, 5))]
    state = numeric_state(values)
    expected = evaluate_query_active_domain(query, state, interpretation=SUCCESSOR)
    plan = CompiledAlgebraPlan(domain=SUCCESSOR)
    answer = plan.execute(query, state)
    assert set(answer.rows()) == expected.rows
    if plan.fallback_reason is not None:
        assert "algebra" in plan.fallback_reason
        assert "fell back" in plan.explain()
    else:
        assert answer.method == "compiled-algebra"
