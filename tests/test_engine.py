"""Tests for the query engine: enumeration algorithm, evaluator facade, guards."""

import pytest

from repro.domains.base import TheoryUndecidableError
from repro.domains.equality import EqualityDomain
from repro.domains.nat_order import NaturalOrderDomain
from repro.domains.presburger import PresburgerDomain
from repro.engine.answers import FiniteAnswer, InfiniteAnswer, UnknownAnswer
from repro.engine.enumeration import answer_by_enumeration, enumerate_tuples
from repro.engine.evaluator import QueryEngine
from repro.engine.safety_guard import GuardedEngine
from repro.experiments.corpora import (
    family_schema,
    family_state,
    numeric_schema,
    numeric_state,
)
from repro.experiments.exp01_intro_queries import (
    more_than_one_son_query,
    unsafe_disjunction_query,
)
from repro.logic.builders import atom, conj, eq, exists, neg, var
from repro.safety.effective_syntax import ActiveDomainSyntax
from repro.safety.relative_safety import EqualityRelativeSafety, OrderedRelativeSafety


def test_enumerate_tuples_is_fair_and_duplicate_free():
    domain = NaturalOrderDomain()
    tuples = list(enumerate_tuples(domain, 2, limit=30))
    assert len(tuples) == 30
    assert len(set(tuples)) == 30
    assert (0, 0) in tuples and (1, 0) in tuples and (0, 1) in tuples
    assert list(enumerate_tuples(domain, 0, limit=5)) == [()]


def test_enumeration_answers_finite_queries_exactly():
    domain = PresburgerDomain()
    state = numeric_state([3, 7])
    query = exists("y", conj(atom("S", var("y")), atom("<", var("x"), var("y"))))
    answer = answer_by_enumeration(query, state, domain, max_rows=50, max_candidates=200)
    assert isinstance(answer, FiniteAnswer)
    assert answer.relation.rows == {(n,) for n in range(7)}


def test_enumeration_empty_answer():
    domain = PresburgerDomain()
    state = numeric_state([3])
    query = conj(atom("S", var("x")), atom("<", var("x"), 2))
    answer = answer_by_enumeration(query, state, domain, max_rows=10, max_candidates=50)
    assert isinstance(answer, FiniteAnswer)
    assert len(answer.relation) == 0


def test_enumeration_gives_up_on_infinite_queries():
    domain = PresburgerDomain()
    state = numeric_state([3])
    query = atom("<", 3, var("x"))
    answer = answer_by_enumeration(query, state, domain, max_rows=5, max_candidates=50)
    assert isinstance(answer, UnknownAnswer)
    assert len(answer.partial) == 5


def test_query_engine_strategies():
    domain = PresburgerDomain()
    engine = QueryEngine(domain, numeric_schema())
    state = numeric_state([2, 4])
    query = atom("S", var("x"))
    active = engine.answer(query, state, strategy="active-domain")
    enumerated = engine.answer(query, state, strategy="enumeration", max_rows=10, max_candidates=50)
    auto = engine.answer(query, state)
    assert active.relation.rows == enumerated.relation.rows == auto.relation.rows == {(2,), (4,)}
    with pytest.raises(ValueError):
        engine.answer(query, state, strategy="mystery")


def test_query_engine_rejects_enumeration_without_decidability():
    from repro.safety.extension import OrderedExtensionDomain

    undecidable = OrderedExtensionDomain(EqualityDomain())
    engine = QueryEngine(undecidable, numeric_schema())
    with pytest.raises(TheoryUndecidableError):
        engine.answer_by_enumeration(atom("S", var("x")), numeric_state([1]))
    # auto strategy falls back to active-domain evaluation
    answer = engine.answer(atom("S", var("x")), numeric_state([1]))
    assert isinstance(answer, FiniteAnswer)


def test_guarded_engine_syntax_rewrite_and_safety_rejection():
    domain = EqualityDomain()
    schema = family_schema()
    state = family_state(generations=2)
    engine = QueryEngine(domain, schema)
    syntax = ActiveDomainSyntax(schema)
    safety = EqualityRelativeSafety(domain)

    guarded = GuardedEngine(engine, syntax=syntax, safety=safety)
    outcome = guarded.answer(unsafe_disjunction_query(), state, strategy="active-domain")
    assert outcome.rewritten
    assert isinstance(outcome.answer, FiniteAnswer)

    unguarded_syntax = GuardedEngine(engine, syntax=None, safety=safety)
    rejection = unguarded_syntax.answer(unsafe_disjunction_query(), state, strategy="active-domain")
    assert isinstance(rejection.answer, InfiniteAnswer)
    assert rejection.verdict is not None and rejection.verdict.is_finite is False

    accepted = unguarded_syntax.answer(more_than_one_son_query(), state, strategy="active-domain")
    assert isinstance(accepted.answer, FiniteAnswer)
    assert not accepted.rewritten


def test_guarded_engine_with_ordered_safety():
    domain = PresburgerDomain()
    engine = QueryEngine(domain, numeric_schema())
    guarded = GuardedEngine(engine, safety=OrderedRelativeSafety(domain))
    state = numeric_state([3, 8])
    finite_query = exists("y", conj(atom("S", var("y")), atom("<", var("x"), var("y"))))
    outcome = guarded.answer(finite_query, state, strategy="enumeration",
                             max_rows=20, max_candidates=100)
    assert isinstance(outcome.answer, FiniteAnswer)
    assert outcome.answer.relation.rows == {(n,) for n in range(8)}

    infinite_query = neg(atom("S", var("x")))
    rejected = guarded.answer(infinite_query, state, strategy="enumeration")
    assert isinstance(rejected.answer, InfiniteAnswer)
