"""End-to-end tests for the asyncio HTTP/SSE front end (stdlib client only)."""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.serve import ServerPolicy, SessionManager, serve_in_thread


def request(port, method, path, payload=None):
    """One HTTP round trip; returns (status, headers, parsed JSON body)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw else None
        return response.status, dict(response.getheaders()), parsed
    finally:
        connection.close()


@pytest.fixture
def served():
    manager = SessionManager(ServerPolicy(rate=10_000.0, burst=1_000))
    with serve_in_thread(manager) as handle:
        yield handle


def connect_nat(port):
    status, _, body = request(port, "POST", "/connect", {
        "domain": "nat<",
        "schema": {"S": 1},
        "state": {"S": [[3], [5], [9]]},
    })
    assert status == 200
    return body["session"]


# ---------------------------------------------------------------------------
# The happy path
# ---------------------------------------------------------------------------


def test_connect_query_explain_roundtrip(served):
    port = served.port
    session = connect_nat(port)

    status, _, answer = request(port, "POST", "/query", {
        "session": session,
        "query": "exists y. exists z. (S(y) & S(z) & y < x & x < z)",
    })
    assert status == 200
    assert answer["rows"] == [[4], [5], [6], [7], [8]]
    assert answer["is_finite"] is True
    assert answer["row_count"] == 5
    assert "elapsed_ms" in answer and "plan" in answer

    status, _, explanation = request(port, "POST", "/explain", {
        "session": session, "query": "S(x)",
    })
    assert status == 200
    assert "free variables: x" in explanation["explanation"]

    status, _, stats = request(port, "GET", "/stats")
    assert status == 200
    assert stats["sessions"]["live_sessions"] == 1
    assert stats["admission"]["admitted"] == 2
    assert stats["policy"]["max_sessions"] == 64

    status, _, closed = request(port, "POST", "/disconnect", {"session": session})
    assert status == 200 and closed["closed"] is True


def test_per_request_state_overrides_the_default(served):
    port = served.port
    session = connect_nat(port)
    status, _, answer = request(port, "POST", "/query", {
        "session": session,
        "query": "S(x)",
        "state": {"S": [[42]]},
    })
    assert status == 200 and answer["rows"] == [[42]]


def test_budget_is_accepted_and_honoured(served):
    port = served.port
    session = connect_nat(port)
    status, _, answer = request(port, "POST", "/query", {
        "session": session,
        "query": "S(x)",
        "budget": {"max_rows": 2},
    })
    assert status == 200 and answer["row_count"] == 2  # truncated by the budget


# ---------------------------------------------------------------------------
# SSE streaming
# ---------------------------------------------------------------------------


def parse_sse(raw):
    """Parse an SSE byte stream into a list of (event, data) pairs."""
    events = []
    for block in raw.decode("utf-8").split("\n\n"):
        if not block.strip():
            continue
        event, data = None, None
        for line in block.split("\n"):
            if line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("data: "):
                data = json.loads(line[len("data: "):])
        events.append((event, data))
    return events


def test_sse_streams_rows_in_chunks():
    manager = SessionManager(
        ServerPolicy(rate=10_000.0, burst=1_000, sse_chunk_rows=2)
    )
    with serve_in_thread(manager) as handle:
        session = connect_nat(handle.port)
        connection = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
        try:
            connection.request("POST", "/query", body=json.dumps({
                "session": session,
                "query": "exists y. exists z. (S(y) & S(z) & y < x & x < z)",
                "stream": True,
            }))
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "text/event-stream"
            events = parse_sse(response.read())
        finally:
            connection.close()
    names = [name for name, _ in events]
    assert names[0] == "meta" and names[-1] == "done"
    row_chunks = [data for name, data in events if name == "rows"]
    assert len(row_chunks) == 3           # 5 rows in chunks of 2
    rows = [row for chunk in row_chunks for row in chunk]
    assert rows == [[4], [5], [6], [7], [8]]
    meta = events[0][1]
    assert meta["row_count"] == 5
    done = events[-1][1]
    assert done["row_count"] == 5


# ---------------------------------------------------------------------------
# Admission over HTTP
# ---------------------------------------------------------------------------


def test_rate_limited_request_gets_429_with_retry_after():
    manager = SessionManager(ServerPolicy(rate=0.001, burst=2))
    with serve_in_thread(manager) as handle:
        port = handle.port
        session = connect_nat(port)  # /connect is not rate limited
        status, _, _ = request(port, "POST", "/query", {
            "session": session, "query": "S(x)",
        })
        assert status == 200
        status, _, _ = request(port, "POST", "/query", {
            "session": session, "query": "S(x)",
        })
        assert status == 200
        status, headers, error = request(port, "POST", "/query", {
            "session": session, "query": "S(x)",
        })
        assert status == 429
        assert float(headers["Retry-After"]) > 0
        assert "exceeded" in error["error"]
        _, _, stats = request(port, "GET", "/stats")
        assert stats["admission"]["rejected_rate_limited"] == 1


# ---------------------------------------------------------------------------
# Error mapping
# ---------------------------------------------------------------------------


def test_bad_requests_get_400(served):
    port = served.port
    session = connect_nat(port)

    # malformed JSON body
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("POST", "/query", body="{not json")
        assert connection.getresponse().status == 400
    finally:
        connection.close()

    # missing session / missing query / unparsable query / bad budget
    assert request(port, "POST", "/query", {"query": "S(x)"})[0] == 400
    assert request(port, "POST", "/query", {"session": session})[0] == 400
    assert request(port, "POST", "/query", {
        "session": session, "query": "S(x",
    })[0] == 400
    assert request(port, "POST", "/query", {
        "session": session, "query": "S(x)", "budget": {"max_rows": -1},
    })[0] == 400
    assert request(port, "POST", "/query", {
        "session": session, "query": "S(x)", "budget": {"nonsense": 1},
    })[0] == 400

    # unknown domain / bad schema on connect
    assert request(port, "POST", "/connect", {"domain": "no-such"})[0] == 400
    assert request(port, "POST", "/connect", {"schema": [1, 2]})[0] == 400


def test_unknown_session_gets_404(served):
    status, _, error = request(served.port, "POST", "/query", {
        "session": "0000000000000000", "query": "S(x)",
    })
    assert status == 404 and "unknown or expired" in error["error"]


def test_unknown_route_404_and_wrong_method_405(served):
    assert request(served.port, "GET", "/nope")[0] == 404
    assert request(served.port, "GET", "/query")[0] == 405
    assert request(served.port, "POST", "/stats")[0] == 405


def test_load_shed_returns_503_body_and_retry_after():
    manager = SessionManager(
        ServerPolicy(rate=10_000.0, burst=1_000, max_inflight=1)
    )
    with serve_in_thread(manager) as handle:
        port = handle.port
        session = connect_nat(port)
        # Occupy the single in-flight slot through the server's own gate, so
        # the next HTTP request is shed exactly as under real overload.
        ticket = handle.server._admission.admit(session)
        try:
            status, headers, error = request(port, "POST", "/query", {
                "session": session, "query": "S(x)",
            })
        finally:
            ticket.release()
        assert status == 503
        assert "at capacity" in error["error"]
        assert "retry later" in error["error"]
        assert float(headers["Retry-After"]) > 0
        _, _, stats = request(port, "GET", "/stats")
        assert stats["admission"]["rejected_over_capacity"] == 1
        # The slot freed up: the same request now succeeds.
        status, _, answer = request(port, "POST", "/query", {
            "session": session, "query": "S(x)",
        })
        assert status == 200 and answer["rows"] == [[3], [5], [9]]


def test_oversized_request_body_gets_413(served):
    port = served.port
    # Announce a body over the 8 MiB cap; the server must refuse from the
    # Content-Length alone, before reading (or us sending) any of it.
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.putrequest("POST", "/query")
        connection.putheader("Content-Type", "application/json")
        connection.putheader("Content-Length", str(9 * 1024 * 1024))
        connection.endheaders()
        response = connection.getresponse()
        raw = response.read()
    finally:
        connection.close()
    assert response.status == 413
    error = json.loads(raw)
    assert "exceeds" in error["error"]


def test_streaming_query_error_is_json_not_event_stream(served):
    # A query that raises before any rows exist must answer with a JSON
    # error document, never a half-open SSE stream — even though the client
    # asked for streaming.
    port = served.port
    session = connect_nat(port)
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("POST", "/query", body=json.dumps({
            "session": session,
            "query": "S(x",  # parse error surfaces mid-handling
            "stream": True,
        }))
        response = connection.getresponse()
        raw = response.read()
    finally:
        connection.close()
    assert response.status == 400
    assert response.getheader("Content-Type") == "application/json"
    error = json.loads(raw)
    assert "error" in error
    # The session survives the failed stream and still answers normally.
    status, _, answer = request(port, "POST", "/query", {
        "session": session, "query": "S(x)",
    })
    assert status == 200 and answer["row_count"] == 3


# ---------------------------------------------------------------------------
# Shutdown
# ---------------------------------------------------------------------------


def test_clean_shutdown_releases_the_port():
    manager = SessionManager(ServerPolicy())
    handle = serve_in_thread(manager).start()
    port = handle.port
    connect_nat(port)
    handle.close()
    with pytest.raises((ConnectionRefusedError, socket.timeout, OSError)):
        request(port, "GET", "/stats")
    assert len(manager) == 0  # sessions dropped by the shutdown


# ---------------------------------------------------------------------------
# Deadlines, cancellation, graceful drain (the resilience layer over HTTP)
# ---------------------------------------------------------------------------

#: a 4-way self-join that cannot finish within a few-millisecond deadline
BIG_JOIN = (
    "exists u. exists v. exists w. "
    "(F(x, u) & F(u, v) & F(v, w) & F(w, z))"
)


def connect_big(port, rows=60_000):
    """A session over a state big enough that BIG_JOIN runs for seconds."""
    status, _, body = request(port, "POST", "/connect", {
        "domain": "nat<",
        "schema": {"F": 2},
        "state": {"F": [[i, (i * 7) % rows] for i in range(rows)]},
    })
    assert status == 200
    return body["session"]


def wait_for_inflight(port, minimum=1, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, stats = request(port, "GET", "/stats")
        if stats["cancellation"]["inflight_queries"] >= minimum:
            return
        time.sleep(0.005)
    raise AssertionError("the query never showed up as in flight")


def test_deadline_exceeded_maps_to_504_with_payload():
    manager = SessionManager(
        ServerPolicy(rate=10_000.0, burst=1_000, time_limit_cap=0.01)
    )
    with serve_in_thread(manager) as handle:
        session = connect_big(handle.port)
        status, _, error = request(handle.port, "POST", "/query", {
            "session": session, "query": BIG_JOIN, "strategy": "compiled",
        })
    assert status == 504
    assert error["error"] == "DeadlineExceeded"
    assert error["operator"], "the payload names the operator reached"
    assert "partial_stats" in error and "message" in error


def test_post_cancel_aborts_an_inflight_query():
    manager = SessionManager(ServerPolicy(rate=10_000.0, burst=1_000))
    with serve_in_thread(manager) as handle:
        port = handle.port
        session = connect_big(port)
        outcome = {}

        def run():
            outcome["response"] = request(port, "POST", "/query", {
                "session": session, "query": BIG_JOIN, "strategy": "compiled",
            })

        worker = threading.Thread(target=run)
        worker.start()
        try:
            wait_for_inflight(port)
            status, _, receipt = request(port, "POST", "/cancel", {
                "session": session, "reason": "killed over http",
            })
            assert status == 200
            assert receipt == {"session": session, "cancelled": 1}
        finally:
            worker.join(timeout=30)
        assert not worker.is_alive()
        status, _, error = outcome["response"]
        assert status == 499
        assert error["error"] == "Cancelled"
        assert "killed over http" in error["message"]
        # The session survives its cancelled query and still answers.
        status, _, answer = request(port, "POST", "/query", {
            "session": session, "query": "F(x, y)",
            "strategy": "compiled", "state": {"F": [[1, 2]]},
        })
        assert status == 200 and answer["rows"] == [[1, 2]]
        _, _, stats = request(port, "GET", "/stats")
        assert stats["cancellation"]["cancelled"] == 1


def test_cancel_requires_post_and_tolerates_idle_sessions(served):
    assert request(served.port, "GET", "/cancel")[0] == 405
    session = connect_nat(served.port)
    status, _, receipt = request(served.port, "POST", "/cancel", {
        "session": session,
    })
    assert status == 200 and receipt["cancelled"] == 0  # nothing in flight
    assert request(served.port, "POST", "/cancel", {
        "session": session, "reason": 7,
    })[0] == 400


def test_shutdown_with_inflight_query_returns_a_structured_499():
    manager = SessionManager(
        ServerPolicy(rate=10_000.0, burst=1_000, shutdown_grace=0.05)
    )
    handle = serve_in_thread(manager).start()
    port = handle.port
    session = connect_big(port)
    outcome = {}

    def run():
        outcome["response"] = request(port, "POST", "/query", {
            "session": session, "query": BIG_JOIN, "strategy": "compiled",
        })

    worker = threading.Thread(target=run)
    worker.start()
    try:
        wait_for_inflight(port)
    finally:
        handle.close()
        worker.join(timeout=30)
    assert not worker.is_alive()
    status, _, error = outcome["response"]
    assert status == 499
    assert error["error"] == "Cancelled"
    assert "shutting down" in error["message"]
    # The port is released and every session was dropped.
    with pytest.raises((ConnectionRefusedError, socket.timeout, OSError)):
        request(port, "GET", "/stats")
    assert len(manager) == 0


def test_draining_manager_maps_to_503():
    manager = SessionManager(ServerPolicy(rate=10_000.0, burst=1_000))
    with serve_in_thread(manager) as handle:
        # Drain the manager directly while the HTTP front end is still up —
        # the window a real shutdown passes through before the port closes.
        manager.shutdown()
        status, _, error = request(handle.port, "POST", "/connect", {
            "domain": "nat<",
        })
    assert status == 503
    assert error["draining"] is True
    assert "shutting down" in error["error"]
