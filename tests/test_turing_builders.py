"""Tests for the machine library, in particular the B_w and Lemma A.2 machines."""

from repro.turing.builders import (
    ExactHaltSpec,
    MinRunSpec,
    NON_TOTAL_MACHINE_BUILDERS,
    TOTAL_MACHINE_BUILDERS,
    halt_if_marked_else_loop,
    prefix_reader,
    prefix_tree_witness,
    unary_writer,
)
from repro.turing.encoding import encode_machine
from repro.turing.machine import run_machine
from repro.turing.traces import has_at_least_traces, has_exactly_traces, trace_count
from repro.turing.words import input_words


def test_total_machine_builders_halt_on_sampled_inputs():
    for builder in TOTAL_MACHINE_BUILDERS:
        machine = builder()
        for word in input_words(3):
            assert run_machine(machine, word, fuel=200).halted, (machine.name, word)


def test_non_total_machine_builders_diverge_somewhere():
    for builder in NON_TOTAL_MACHINE_BUILDERS:
        machine = builder()
        diverges = any(not run_machine(machine, word, fuel=200).halted for word in input_words(3))
        assert diverges, machine.name


def test_prefix_reader_behaviour():
    machine = prefix_reader("1&1")
    machine_word = encode_machine(machine)
    # inputs starting with the prefix: the machine loops, so many traces exist
    assert trace_count(machine_word, "1&1", fuel=100) is None
    assert trace_count(machine_word, "1&11", fuel=100) is None
    # inputs not starting with the prefix: the machine halts quickly
    assert trace_count(machine_word, "111", fuel=100) is not None
    assert trace_count(machine_word, "&", fuel=100) is not None
    # so B_w is expressible through trace counts, as the Appendix sketches
    assert has_at_least_traces(machine_word, "1&1", len("1&1"))
    assert not has_at_least_traces(machine_word, "11", len("1&1") + 2)


def test_halt_if_marked_else_loop():
    machine = halt_if_marked_else_loop()
    assert run_machine(machine, "1", fuel=10).halted
    assert not run_machine(machine, "&1", fuel=100).halted


def test_unary_writer_output_length():
    for count in (0, 1, 4):
        result = run_machine(unary_writer(count), "", fuel=100)
        assert result.halted and result.output == "1" * count


def test_prefix_tree_witness_meets_specs():
    exact = [ExactHaltSpec("1&11&", 2), ExactHaltSpec("&&1&&", 4)]
    at_least = [MinRunSpec("11111", 3)]
    machine_word = encode_machine(prefix_tree_witness(exact, at_least))
    assert has_exactly_traces(machine_word, "1&11&", 2)
    assert has_exactly_traces(machine_word, "&&1&&", 4)
    assert has_at_least_traces(machine_word, "11111", 3)


def test_prefix_tree_witness_without_exact_constraints_never_halts():
    machine_word = encode_machine(prefix_tree_witness([], [MinRunSpec("111", 2)]))
    assert trace_count(machine_word, "111", fuel=100) is None
    assert trace_count(machine_word, "", fuel=100) is None
