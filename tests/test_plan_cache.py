"""Tests for the LRU plan cache and the planner's compiled-backend selection."""

import pytest

from repro import Budget, connect
from repro.domains.equality import EqualityDomain
from repro.engine.plan_cache import PlanCache
from repro.engine.plans import (
    STRATEGIES,
    ActiveDomainPlan,
    CompiledAlgebraPlan,
    GuardedPlan,
    VectorizedAlgebraPlan,
    plan_for_strategy,
)
from repro.domains.registry import get_entry
from repro.experiments.corpora import family_schema, family_state


# ---------------------------------------------------------------------------
# PlanCache mechanics
# ---------------------------------------------------------------------------


def test_cache_hits_and_misses_are_counted():
    cache = PlanCache(maxsize=4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    info = cache.info()
    assert (info.hits, info.misses, info.size, info.maxsize) == (1, 1, 1, 4)
    assert "hits=1" in str(info)


def test_cache_evicts_least_recently_used():
    cache = PlanCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1        # refresh "a": now "b" is the LRU entry
    cache.put("c", 3)
    assert "b" not in cache and "a" in cache and "c" in cache
    assert cache.info().evictions == 1


def test_cache_maxsize_zero_disables_storage():
    cache = PlanCache(maxsize=0)
    cache.put("a", 1)
    assert len(cache) == 0 and cache.get("a") is None
    with pytest.raises(ValueError):
        PlanCache(maxsize=-1)


def test_cache_clear_keeps_counters():
    cache = PlanCache()
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.info().hits == 1


# ---------------------------------------------------------------------------
# Planner selection and the session-owned cache
# ---------------------------------------------------------------------------


def test_registry_capability_flags():
    assert get_entry("eq").supports_compiled_algebra
    assert get_entry("presburger").supports_compiled_algebra
    assert not get_entry("succ").supports_compiled_algebra
    assert not get_entry("traces").supports_compiled_algebra
    assert get_entry("eq").supports_vectorized
    assert get_entry("nat<").supports_vectorized
    # succ's int carrier encodes fine; the flag is declarative until the
    # domain gains a compiled backend (auto-selection needs both flags).
    assert get_entry("succ").supports_vectorized
    assert not get_entry("traces").supports_vectorized


def test_guard_certified_equality_queries_use_the_vectorized_backend():
    session = connect("eq", family_schema())
    plan = session.plan()
    assert isinstance(plan, GuardedPlan)
    # The vectorized plan is a CompiledAlgebraPlan: same calculus→algebra
    # compiler, different execution substrate.
    assert isinstance(plan.inner, VectorizedAlgebraPlan)
    assert isinstance(plan.inner, CompiledAlgebraPlan)
    state = family_state(generations=2)
    result = session.run("exists y. (F(x, y) & F(y, z))", state)
    assert result.answer.method == "vectorized"
    assert result.answer.rows() == tuple(sorted(
        (f, g) for f, m in state["F"] for m2, g in state["F"] if m == m2
    ))


def test_repeated_queries_hit_the_session_plan_cache():
    session = connect("eq", family_schema())
    state = family_state(generations=2)
    for _ in range(3):
        session.query("exists y. (F(x, y) & F(y, z))", state)
    info = session.plan_cache_info()
    assert info.misses == 1 and info.hits == 2 and info.size == 1
    # A different schema fingerprint can never reuse the entry.
    assert session.plan_cache is not connect("eq", family_schema()).plan_cache


def test_schema_fingerprint_separates_cache_entries():
    session = connect("eq", family_schema())
    state = family_state(generations=1)
    session.query("F(x, y)", state)
    other_schema = family_schema().extend([])  # equal schema -> same key
    session.query("F(x, y)", state)
    assert session.plan_cache_info().size == 1
    assert other_schema == family_schema()


def test_compiled_strategy_is_explicitly_requestable():
    assert "compiled" in STRATEGIES
    session = connect("eq", family_schema())
    plan = session.plan("compiled")
    assert isinstance(plan, CompiledAlgebraPlan)
    state = family_state(generations=1)
    answer = session.execute(plan, "F(x, y)", state)
    assert answer.method == "compiled-algebra"
    assert "compiled-algebra" in plan.explain()
    assert plan.last_summary is not None


def test_plan_for_strategy_builds_a_compiled_plan_without_a_cache():
    plan = plan_for_strategy("compiled", EqualityDomain(), Budget())
    assert isinstance(plan, CompiledAlgebraPlan)
    assert plan.cache is None


def test_unsupported_domains_keep_the_tree_walker_for_guarded_auto():
    # (N, ') has a guard but not the compiled backend: queries lean on succ
    # terms, so the planner keeps enumeration / tree walking.
    session = connect("succ")
    plan = session.plan()
    assert not isinstance(getattr(plan, "inner", plan), CompiledAlgebraPlan)


def test_fallback_reason_is_recorded_and_cleared():
    session = connect("succ", family_schema())
    plan = session.plan("compiled")
    state = session.state(F=[(0, 1)])
    session.execute(plan, "exists y. (F(x, y) & x = succ(y))", state)
    assert plan.fallback_reason is not None
    assert "fell back" in plan.explain()
    session.execute(plan, "F(x, y)", state)
    assert plan.fallback_reason is None


def test_plan_cache_size_is_configurable_per_session():
    session = connect("eq", family_schema(), plan_cache_size=1)
    state = family_state(generations=1)
    session.query("F(x, y)", state)
    session.query("F(y, x)", state)
    session.query("F(x, y)", state)  # evicted, recompiled
    info = session.plan_cache_info()
    assert info.maxsize == 1 and info.evictions >= 1 and info.misses == 3


def test_active_domain_plan_and_compiled_plan_agree_under_extra_elements():
    domain = EqualityDomain()
    state = family_state(generations=2)
    from repro.logic.parser import parse_formula

    query = parse_formula("~F(x, y)")
    walker = ActiveDomainPlan(domain=domain, extra_elements=(99,))
    compiled = CompiledAlgebraPlan(domain=domain, extra_elements=(99,))
    assert walker.execute(query, state).rows() == compiled.execute(query, state).rows()


# ---------------------------------------------------------------------------
# hit_rate and shared-cache injection (the serving layer's additions)
# ---------------------------------------------------------------------------


def test_hit_rate_is_zero_before_any_lookup_and_tracks_the_fraction():
    cache = PlanCache(maxsize=4)
    assert cache.info().hit_rate == 0.0
    cache.get("a")            # miss
    cache.put("a", 1)
    cache.get("a")            # hit
    cache.get("a")            # hit
    info = cache.info()
    assert info.hit_rate == pytest.approx(2 / 3)
    assert "hit_rate=0.67" in str(info)


def test_sessions_accept_an_injected_shared_plan_cache():
    shared = PlanCache(maxsize=32)
    first = connect("eq", family_schema(), plan_cache=shared)
    second = connect("eq", family_schema(), plan_cache=shared)
    assert first.plan_cache is shared and second.plan_cache is shared
    state = family_state(generations=1)
    first.query("F(x, y)", state)
    before = shared.info().hits
    second.query("F(x, y)", state)    # compiled once, shared across sessions
    assert shared.info().hits == before + 1
