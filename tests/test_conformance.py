"""Tests for the domain-pack plugin API and the conformance harness.

Three layers:

* registry lifecycle: atomic (all-or-nothing) alias registration,
  ``unregister_domain`` and the ``temporary_domain`` / ``temporary_pack``
  context managers, and pack/entry lock-step;
* the conformance harness run against every built-in pack (the
  registry-parametrized positive suite);
* negative controls: a deliberately broken pack — mutated decision
  procedure, false substrate claim, wrong declared finiteness — must make
  the harness fail loudly on exactly the right check.
"""

import pytest

from repro.conformance import (
    CHECK_NAMES,
    ConformanceReport,
    run_conformance,
    run_pack_conformance,
)
from repro.domains import (
    DomainEntry,
    DomainPack,
    PackCorpus,
    PackQuery,
    PackSentence,
    UnknownDomainError,
    available_domains,
    available_packs,
    domain_aliases,
    get_entry,
    get_pack,
    register_domain,
    resolve_domain_name,
    temporary_domain,
    temporary_pack,
    unregister_domain,
)
from repro.domains.cyclic import CyclicSuccessorDomain
from repro.domains.equality import EqualityDomain
from repro.logic.builders import eq, exists, var


# ---------------------------------------------------------------------------
# Registry lifecycle
# ---------------------------------------------------------------------------


def _probe_entry(name="probe_domain", aliases=("probe",)):
    return DomainEntry(name=name, factory=EqualityDomain, aliases=aliases)


def test_register_domain_is_atomic_on_alias_collision():
    # "eq" already aliases the equality domain: registration must fail
    # without writing *anything* — neither the canonical name nor the first,
    # non-colliding alias may leak into the registry.
    entry = _probe_entry(aliases=("fresh_alias", "eq"))
    before_domains = available_domains()
    before_aliases = domain_aliases()
    with pytest.raises(ValueError, match="eq"):
        register_domain(entry)
    assert available_domains() == before_domains
    assert domain_aliases() == before_aliases
    with pytest.raises(UnknownDomainError):
        resolve_domain_name("fresh_alias")
    with pytest.raises(UnknownDomainError):
        resolve_domain_name("probe_domain")


def test_unregister_domain_removes_entry_and_every_alias():
    entry = register_domain(_probe_entry())
    assert resolve_domain_name("probe") == "probe_domain"
    removed = unregister_domain("probe")  # by alias
    assert removed is entry
    assert "probe_domain" not in available_domains()
    with pytest.raises(UnknownDomainError):
        resolve_domain_name("probe")


def test_unregister_unknown_domain_raises():
    with pytest.raises(UnknownDomainError):
        unregister_domain("never_registered")


def test_temporary_domain_cleans_up_even_on_error():
    entry = _probe_entry()
    with pytest.raises(RuntimeError):
        with temporary_domain(entry):
            assert get_entry("probe") is entry
            raise RuntimeError("boom")
    assert "probe_domain" not in available_domains()


def test_every_domain_has_a_pack_and_flags_agree():
    assert set(available_packs()) == set(available_domains())
    for name in available_packs():
        pack = get_pack(name)
        entry = get_entry(name)
        assert pack.to_entry() == entry


def test_get_pack_resolves_aliases():
    assert get_pack("qlinear").name == "rationals_with_order"
    assert get_pack("zdiff").name == "integer_differences"
    assert get_pack("zmod").name == "cyclic_successor"
    assert get_pack("shortlex").name == "shortlex_strings"


def test_get_pack_reports_packless_domains():
    with temporary_domain(_probe_entry()):
        with pytest.raises(UnknownDomainError, match="without a pack"):
            get_pack("probe")


def test_temporary_pack_registers_domain_and_cleans_up():
    pack = DomainPack(name="probe_pack", factory=EqualityDomain, aliases=("pp",))
    with temporary_pack(pack):
        assert "probe_pack" in available_domains()
        assert get_pack("pp") is pack
    assert "probe_pack" not in available_domains()
    assert "probe_pack" not in available_packs()


# ---------------------------------------------------------------------------
# The conformance suite, positive: every built-in pack passes every check
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("pack_name", sorted(available_packs()))
def test_builtin_pack_conformance(pack_name):
    report = run_pack_conformance(pack_name, seeds=("0",))
    assert report.ok, report.describe()
    assert {check.check for check in report.checks} == set(CHECK_NAMES)


def test_run_conformance_over_named_subset():
    report = run_conformance(["qlinear", "cyclic"], seeds=("0",))
    assert isinstance(report, ConformanceReport)
    assert report.ok
    assert [r.pack for r in report.reports] == [
        "rationals_with_order", "cyclic_successor",
    ]
    assert "all conformant" in report.describe()


def test_new_packs_declare_the_required_evidence():
    for name in ("rationals_with_order", "integer_differences",
                 "cyclic_successor", "shortlex_strings"):
        pack = get_pack(name)
        assert pack.sentences(), name
        assert pack.corpora(), name
        assert all(c.state_factory is not None for c in pack.corpora()), name
        assert pack.safety_factory is not None, name


# ---------------------------------------------------------------------------
# Negative controls: the harness must fail loudly on a broken pack
# ---------------------------------------------------------------------------


class _LyingCyclicDomain(CyclicSuccessorDomain):
    """A cyclic domain whose decision procedure answers backwards."""

    name = "broken_cyclic"

    def decide(self, sentence):
        return not super().decide(sentence)


def _broken_sentences():
    x = var("x")
    from repro.logic.builders import apply

    return (
        # Declared truth is the *real* truth; the lying domain gets it wrong.
        PackSentence("no-fixpoint", exists("x", eq(apply("succ", x), x)), False),
    )


def test_harness_fails_on_mutated_decision_procedure():
    base = get_pack("cyclic_successor")
    broken = DomainPack(
        name="broken_cyclic",
        factory=_LyingCyclicDomain,
        finite_carrier=True,
        sentences_factory=_broken_sentences,
        corpora_factory=base.corpora_factory,
    )
    with temporary_pack(broken):
        report = run_pack_conformance("broken_cyclic", seeds=("0",))
    assert not report.ok
    failed = {check.check for check in report.failures}
    assert "decision-procedure" in failed
    assert "no-fixpoint" in report.describe()


def test_harness_fails_on_false_substrate_claim():
    # Claims the compiled-algebra substrate for the successor domain, whose
    # function-heavy queries never compile: the claims check must notice
    # that the substrate never engaged.
    from repro.domains.successor import SuccessorDomain
    from repro.relational.schema import DatabaseSchema, RelationSchema
    from repro.relational.state import DatabaseState

    x = var("x")
    schema = DatabaseSchema((RelationSchema("S", 1, ("value",)),))

    def corpora():
        from repro.logic.builders import apply

        state = DatabaseState(schema, {"S": [(2,), (5,)]})
        return (
            PackCorpus(
                name="succ-only",
                schema=schema,
                canonical_state=state,
                queries=(
                    PackQuery("succ-of-member",
                              exists("y", eq(x, apply("succ", var("y")))), None),
                ),
            ),
        )

    braggart = DomainPack(
        name="braggart_successor",
        factory=SuccessorDomain,
        supports_compiled_algebra=True,  # false: succ terms never compile
        corpora_factory=corpora,
    )
    with temporary_pack(braggart):
        report = run_pack_conformance("braggart_successor", seeds=("0",))
    assert not report.ok
    assert any(
        check.check == "substrate-equivalence" and "never engaged" in check.details
        for check in report.failures
    )


def test_harness_fails_on_wrong_declared_finiteness():
    # Declares the provably infinite complement query finite: the
    # guard-soundness check must flag the disagreement with the guard.
    base = get_pack("equality")

    def corpora():
        for corpus in base.corpora():
            wrong = tuple(
                PackQuery(pq.name, pq.query, True) if pq.name == "not-a-father"
                else pq
                for pq in corpus.queries
            )
            return (
                PackCorpus(
                    name=corpus.name,
                    schema=corpus.schema,
                    canonical_state=corpus.canonical_state,
                    queries=wrong,
                    state_factory=corpus.state_factory,
                ),
            )

    wrong_pack = DomainPack(
        name="wrong_equality",
        factory=base.factory,
        safety_factory=base.safety_factory,
        finite_implies_domain_independent=True,
        corpora_factory=corpora,
    )
    with temporary_pack(wrong_pack):
        report = run_pack_conformance("wrong_equality", seeds=("0",))
    assert not report.ok
    assert any(check.check == "guard-soundness" for check in report.failures)


def test_cli_entry_point_exit_codes():
    from repro.conformance.__main__ import main

    assert main(["cyclic", "--seeds", "0"]) == 0
    broken = DomainPack(
        name="broken_cyclic",
        factory=_LyingCyclicDomain,
        finite_carrier=True,
        sentences_factory=_broken_sentences,
    )
    with temporary_pack(broken):
        assert main(["broken_cyclic", "--seeds", "0"]) == 1


# ---------------------------------------------------------------------------
# Harness internals worth pinning down
# ---------------------------------------------------------------------------


def test_edge_check_requires_negation_or_universal_shape():
    x = var("x")
    base = get_pack("equality")

    def tame_corpora():
        corpus = base.corpora()[0]
        only_positive = tuple(
            pq for pq in corpus.queries
            if pq.name in ("fathers-and-sons", "grandfathers")
        )
        return (
            PackCorpus(
                name=corpus.name,
                schema=corpus.schema,
                canonical_state=corpus.canonical_state,
                queries=only_positive,
                state_factory=corpus.state_factory,
            ),
        )

    tame = DomainPack(
        name="tame_equality",
        factory=base.factory,
        corpora_factory=tame_corpora,
    )
    with temporary_pack(tame):
        report = run_pack_conformance("tame_equality", seeds=("0",))
    assert any(
        check.check == "edge-corpora" and "negation" in check.details
        for check in report.failures
    )


def test_report_describe_mentions_every_pack():
    report = run_conformance(["eq", "shortlex"], seeds=("0",))
    text = report.describe()
    assert "equality" in text and "shortlex_strings" in text
    assert "2 pack(s)" in text
