"""Tests for the finitization operator (Theorem 2.2)."""

from hypothesis import given, settings, strategies as st

from repro.domains.presburger import PresburgerDomain
from repro.logic.analysis import free_variables
from repro.logic.builders import atom, conj, eq, exists, forall_many, iff, neg, var
from repro.logic.formulas import And, Exists
from repro.logic.parser import parse_formula
from repro.logic.terms import Const, Var
from repro.safety.finitization import (
    finitization_bound_part,
    finitize,
    is_finitization_of,
    split_finitization,
)

DOMAIN = PresburgerDomain()


def test_finitize_shape():
    query = atom("<", var("x"), Const(5))
    finitized = finitize(query)
    assert isinstance(finitized, And) and len(finitized.conjuncts) == 2
    assert finitized.conjuncts[0] == query
    assert isinstance(finitized.conjuncts[1], Exists)
    assert free_variables(finitized) == free_variables(query)


def test_finitize_of_finite_query_is_equivalent():
    # x < 5 is finite; its finitization must be equivalent
    query = parse_formula("x < 5")
    finitized = finitize(query)
    equivalence = forall_many(["x"], iff(query, finitized))
    assert DOMAIN.decide(equivalence)


def test_finitize_of_infinite_query_is_strictly_stronger():
    query = parse_formula("5 < x")
    finitized = finitize(query)
    equivalence = forall_many(["x"], iff(query, finitized))
    assert not DOMAIN.decide(equivalence)
    # ... and the finitization itself has no solutions at all here (no upper bound exists)
    assert not DOMAIN.decide(Exists("x", finitized))


def test_finitization_of_any_formula_is_finite():
    # the bound part forces all answers below some m, so over the naturals the
    # answer of phi^F is always finite; check the defining property as a sentence
    from repro.logic.builders import implies

    for text in ("5 < x", "x < 5", "x = x", "~(x = 3)"):
        query = parse_formula(text)
        finitized = finitize(query)
        # direct semantic statement: exists m forall x (phi^F -> x < m)
        claim = Exists(
            "m",
            forall_many(["x"], implies(finitized, atom("<", var("x"), var("m")))),
        )
        assert DOMAIN.decide(claim)


def test_split_and_recognise_finitization():
    query = parse_formula("x < y + 2")
    finitized = finitize(query)
    assert split_finitization(finitized) == query
    assert is_finitization_of(finitized, query)
    assert split_finitization(query) is None
    assert not is_finitization_of(query, query)


def test_finitize_integers_variant():
    query = parse_formula("x < 5")
    finitized = finitize(query, integers=True)
    assert split_finitization(finitized) == query
    bound = finitization_bound_part(query, integers=True)
    assert isinstance(bound, Exists)


def test_finitize_sentence_has_no_free_variables():
    sentence = parse_formula("exists x. x < 5")
    finitized = finitize(sentence)
    assert free_variables(finitized) == frozenset()


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 20), st.integers(0, 20))
def test_finitization_equivalence_characterises_finiteness_property(a, b):
    """For interval-style queries, phi^F == phi holds iff the query is finite."""
    # finite query: a <= x < b   (possibly empty)
    finite_query = conj(atom("<=", Const(a), var("x")), atom("<", var("x"), Const(b)))
    infinite_query = atom("<", Const(a), var("x"))
    finite_equiv = forall_many(["x"], iff(finite_query, finitize(finite_query)))
    infinite_equiv = forall_many(["x"], iff(infinite_query, finitize(infinite_query)))
    assert DOMAIN.decide(finite_equiv)
    assert not DOMAIN.decide(infinite_equiv)
