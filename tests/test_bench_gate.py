"""Unit tests for the benchmark regression gate (benchmarks/compare_bench.py).

The gate has two dimensions: machine-dependent medians (slower-than-baseline
fails) and machine-normalised speedup ratios recorded in ``extra_info``
(smaller-than-baseline fails).  The ratio gate is what keeps the baseline
portable across runner hardware, so it gets deterministic coverage here.
"""

import importlib.util
import json
import pathlib

import pytest

_GATE_PATH = pathlib.Path(__file__).parent.parent / "benchmarks" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _GATE_PATH)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def _bench_file(tmp_path, name, entries):
    payload = {
        "benchmarks": [
            {
                "fullname": fullname,
                "stats": {"median": median},
                "extra_info": extra,
            }
            for fullname, median, extra in entries
        ]
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_load_benchmarks_extracts_medians_and_speedup_ratios(tmp_path):
    path = _bench_file(tmp_path, "b.json", [
        ("t::a", 0.5, {"speedup_vs_set": 12.0, "rows": 100}),
        ("t::b", 0.25, {}),
    ])
    medians, ratios = compare_bench.load_benchmarks(path)
    assert medians == {"t::a": 0.5, "t::b": 0.25}
    assert ratios == {"t::a::speedup_vs_set": 12.0}  # non-speedup keys ignored


def test_median_regression_fails_the_gate(tmp_path, capsys):
    baseline = _bench_file(tmp_path, "base.json", [("t::a", 0.1, {})])
    current = _bench_file(tmp_path, "cur.json", [("t::a", 0.2, {})])
    assert compare_bench.main([baseline, current, "--tolerance", "1.25"]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_ratio_regression_fails_even_when_medians_improve(tmp_path, capsys):
    # A faster machine hides a real speedup collapse from the median gate —
    # the dimensionless ratio gate catches it anyway.
    baseline = _bench_file(
        tmp_path, "base.json", [("t::a", 0.1, {"speedup_vs_set": 30.0})]
    )
    current = _bench_file(
        tmp_path, "cur.json", [("t::a", 0.05, {"speedup_vs_set": 2.0})]
    )
    assert compare_bench.main([baseline, current]) == 1
    out = capsys.readouterr().out
    assert "speedup" in out and "REGRESSION" in out


def test_ratio_within_tolerance_passes(tmp_path):
    baseline = _bench_file(
        tmp_path, "base.json", [("t::a", 0.1, {"speedup_vs_set": 30.0})]
    )
    current = _bench_file(
        tmp_path, "cur.json", [("t::a", 0.11, {"speedup_vs_set": 25.0})]
    )
    assert compare_bench.main([baseline, current]) == 0


@pytest.mark.parametrize("side", ["baseline", "current"])
def test_unmatched_benchmarks_and_ratios_never_fail(tmp_path, side):
    entries = [("t::a", 0.1, {"speedup_vs_set": 5.0})]
    empty = []
    baseline = _bench_file(
        tmp_path, "base.json", entries if side == "baseline" else empty
    )
    current = _bench_file(
        tmp_path, "cur.json", entries if side == "current" else empty
    )
    assert compare_bench.main([baseline, current]) == 0
