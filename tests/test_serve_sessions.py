"""Tests for the session manager: lifecycle, locks, shared caches."""

import threading
import time

import pytest

from repro.engine.budget import Budget
from repro.experiments.corpora import numeric_schema
from repro.serve.policy import ServerPolicy
from repro.serve.sessions import SessionManager, UnknownSessionError


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def manager():
    manager = SessionManager(ServerPolicy(max_sessions=4, session_ttl=10.0))
    yield manager
    manager.shutdown()


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


def test_connect_returns_distinct_unguessable_ids(manager):
    first = manager.connect("equality")
    second = manager.connect("equality")
    assert first.session_id != second.session_id
    assert len(first.session_id) == 16
    assert manager.get(first.session_id) is first
    assert manager.get(second.session_id) is second


def test_unknown_session_raises(manager):
    with pytest.raises(UnknownSessionError):
        manager.get("deadbeef00000000")


def test_sessions_expire_after_ttl():
    clock = FakeClock()
    manager = SessionManager(
        ServerPolicy(session_ttl=10.0), clock=clock
    )
    try:
        managed = manager.connect("equality")
        clock.advance(9.0)
        assert manager.get(managed.session_id) is managed  # use refreshes TTL
        clock.advance(9.0)
        assert manager.get(managed.session_id) is managed
        clock.advance(11.0)
        with pytest.raises(UnknownSessionError):
            manager.get(managed.session_id)
        assert manager.stats()["sessions"]["expired"] == 1
    finally:
        manager.shutdown()


def test_lru_eviction_beyond_max_sessions():
    clock = FakeClock()
    manager = SessionManager(
        ServerPolicy(max_sessions=2, session_ttl=1000.0), clock=clock
    )
    try:
        first = manager.connect("equality")
        second = manager.connect("equality")
        manager.get(first.session_id)       # refresh: second becomes LRU
        third = manager.connect("equality")
        assert set(manager.session_ids()) == {first.session_id, third.session_id}
        with pytest.raises(UnknownSessionError):
            manager.get(second.session_id)
        assert manager.stats()["sessions"]["evicted"] == 1
    finally:
        manager.shutdown()


def test_close_drops_a_session(manager):
    managed = manager.connect("equality")
    assert manager.close(managed.session_id)
    assert not manager.close(managed.session_id)
    with pytest.raises(UnknownSessionError):
        manager.get(managed.session_id)


# ---------------------------------------------------------------------------
# Shared plan cache
# ---------------------------------------------------------------------------


def test_sessions_share_the_managers_plan_cache(manager):
    a = manager.connect("nat<", numeric_schema())
    b = manager.connect("nat<", numeric_schema())
    assert a.session.plan_cache is manager.plan_cache
    assert b.session.plan_cache is manager.plan_cache

    state = a.session.state({"S": [(1,), (4,)]})
    manager.run_query(a.session_id, "S(x)", state, strategy="vectorized")
    before = manager.plan_cache.info()
    # the *other* session running the same query hits the shared cache
    manager.run_query(b.session_id, "S(x)", state, strategy="vectorized")
    after = manager.plan_cache.info()
    assert after.hits == before.hits + 1
    assert after.misses == before.misses


def test_connect_cannot_opt_out_of_the_shared_cache(manager):
    from repro.engine.plan_cache import PlanCache

    rogue = PlanCache(maxsize=1)
    managed = manager.connect("equality", plan_cache=rogue, plan_cache_size=7)
    assert managed.session.plan_cache is manager.plan_cache


# ---------------------------------------------------------------------------
# Query execution: clamping and serialization
# ---------------------------------------------------------------------------


def test_run_query_clamps_the_budget():
    manager = SessionManager(
        ServerPolicy(max_rows_cap=7, max_candidates_cap=11, fuel_cap=13)
    )
    try:
        managed = manager.connect("equality")
        seen = {}
        original_run = managed.session.run

        def spying_run(query, state=None, **kwargs):
            seen["budget"] = kwargs.get("budget")
            return original_run(query, state, **kwargs)

        managed.session.run = spying_run  # type: ignore[method-assign]
        manager.run_query(
            managed.session_id, "x = 1", budget=Budget(max_rows=10**9)
        )
        assert seen["budget"].max_rows == 7
        assert seen["budget"].max_candidates == 11
        assert seen["budget"].fuel == 13
    finally:
        manager.shutdown()


def test_same_session_serializes_distinct_sessions_overlap():
    manager = SessionManager(ServerPolicy(workers=4))
    try:
        a = manager.connect("equality")
        b = manager.connect("equality")
        running = {"current": 0, "max_same": 0, "max_total": 0}
        guard = threading.Lock()
        per_session = {a.session_id: 0, b.session_id: 0}

        def slow_run(session_id):
            def run(query, state=None, **kwargs):
                with guard:
                    per_session[session_id] += 1
                    running["current"] += 1
                    running["max_total"] = max(running["max_total"], running["current"])
                    running["max_same"] = max(
                        running["max_same"], per_session[session_id]
                    )
                time.sleep(0.05)
                with guard:
                    per_session[session_id] -= 1
                    running["current"] -= 1
                return original_runs[session_id](query, state, **kwargs)

            return run

        original_runs = {
            a.session_id: a.session.run,
            b.session_id: b.session.run,
        }
        a.session.run = slow_run(a.session_id)  # type: ignore[method-assign]
        b.session.run = slow_run(b.session_id)  # type: ignore[method-assign]

        futures = []
        for _ in range(3):
            futures.append(manager.submit_query(a.session_id, "x = 1"))
            futures.append(manager.submit_query(b.session_id, "x = 1"))
        for future in futures:
            future.result(timeout=30)

        assert running["max_same"] == 1       # one session's queries serialize
        assert running["max_total"] >= 2      # ...but distinct sessions overlap
    finally:
        manager.shutdown()


def test_default_state_from_connect_is_used(manager):
    schema = numeric_schema()
    managed = manager.connect("nat<", schema)
    managed.state = managed.session.state({"S": [(2,), (8,)]})
    result = manager.run_query(managed.session_id, "S(x)", strategy="vectorized")
    assert result.answer.rows() == ((2,), (8,))


# ---------------------------------------------------------------------------
# Stats / teardown
# ---------------------------------------------------------------------------


def test_stats_reports_sessions_and_caches(manager):
    managed = manager.connect("nat<", numeric_schema())
    state = managed.session.state({"S": [(1,)]})
    manager.run_query(managed.session_id, "S(x)", state, strategy="vectorized")
    stats = manager.stats()
    assert stats["sessions"]["live_sessions"] == 1
    assert stats["plan_cache"]["maxsize"] == manager.policy.plan_cache_size
    assert "hit_rate" in stats["plan_cache"]
    assert "encode_cache" in stats
    (facts,) = stats["session_details"]
    assert facts["queries_served"] == 1
    assert facts["domain"] == "naturals_with_order"
    import json

    json.dumps(stats)  # the whole payload must be JSON-serializable


def test_shutdown_is_idempotent_and_drops_sessions():
    manager = SessionManager(ServerPolicy())
    managed = manager.connect("equality")
    manager.submit_query(managed.session_id, "x = 1").result(timeout=30)
    manager.shutdown()
    manager.shutdown()
    assert len(manager) == 0


# ---------------------------------------------------------------------------
# Cancellation registry / graceful drain
# ---------------------------------------------------------------------------


def big_join_session(manager):
    """A session whose 4-way self-join is far too slow to finish un-cancelled."""
    from repro.relational.schema import DatabaseSchema, RelationSchema

    schema = DatabaseSchema((RelationSchema("F", 2),))
    managed = manager.connect("nat<", schema)
    managed.state = managed.session.state(
        {"F": [(i, (i * 7) % 60_000) for i in range(60_000)]}
    )
    query = (
        "exists u. exists v. exists w. "
        "(F(x, u) & F(u, v) & F(v, w) & F(w, z))"
    )
    # An explicit substrate strategy: the "auto" guard would first run the
    # (un-checkpointed) Presburger quantifier-elimination decision procedure
    # on this 4-quantifier query, which dwarfs the execution itself.
    return managed, query


def test_cancel_session_aborts_an_inflight_query():
    from repro.engine.budget import Cancelled

    manager = SessionManager(ServerPolicy())
    try:
        managed, query = big_join_session(manager)
        future = manager.submit_query(managed.session_id, query, strategy="compiled")
        deadline = time.monotonic() + 10
        while manager.inflight_queries() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        tripped = manager.cancel_session(managed.session_id, reason="test abort")
        assert tripped == 1
        with pytest.raises(Cancelled, match="test abort"):
            future.result(timeout=30)
        assert manager.inflight_queries() == 0
        assert manager.stats()["cancellation"]["cancelled"] == 1
    finally:
        manager.shutdown()


def test_disconnect_cancels_before_dropping_the_session():
    from repro.engine.budget import Cancelled

    manager = SessionManager(ServerPolicy())
    try:
        managed, query = big_join_session(manager)
        future = manager.submit_query(managed.session_id, query, strategy="compiled")
        deadline = time.monotonic() + 10
        while manager.inflight_queries() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert manager.close(managed.session_id) is True
        with pytest.raises(Cancelled, match="disconnected"):
            future.result(timeout=30)
    finally:
        manager.shutdown()


def test_graceful_shutdown_cancels_stragglers_and_rejects_new_work():
    from repro.engine.budget import Cancelled
    from repro.serve.sessions import ServerDraining

    # A short grace window relative to the query's runtime: the straggler is
    # still mid-join when the window closes, so cancel_all must abort it.
    manager = SessionManager(ServerPolicy(shutdown_grace=0.05))
    managed, query = big_join_session(manager)
    future = manager.submit_query(managed.session_id, query, strategy="compiled")
    deadline = time.monotonic() + 10
    while manager.inflight_queries() == 0 and time.monotonic() < deadline:
        time.sleep(0.005)
    receipt = manager.shutdown()
    assert receipt["drained_naturally"] is False
    assert receipt["cancelled_inflight"] == 1
    with pytest.raises(Cancelled, match="shutting down"):
        future.result(timeout=30)
    assert len(manager) == 0
    assert manager.draining
    with pytest.raises(ServerDraining):
        manager.connect("equality")
    manager.shutdown()  # still idempotent


def test_stats_reports_cancellation_and_breaker_sections(manager):
    stats = manager.stats()
    assert stats["cancellation"] == {
        "inflight_queries": 0, "cancelled": 0, "draining": False,
    }
    assert "substrates" in stats["breaker"]
    import json

    json.dumps(stats)
