"""Tests for the relative-safety deciders (Theorems 2.5, 2.6, 3.3 and the equality case)."""

import pytest

from repro.domains.equality import EqualityDomain
from repro.domains.presburger import PresburgerDomain
from repro.domains.successor import SuccessorDomain
from repro.experiments.corpora import (
    family_state,
    halting_corpus,
    numeric_state,
    ordered_query_corpus,
    successor_query_corpus,
)
from repro.experiments.exp01_intro_queries import (
    grandfather_query,
    more_than_one_son_query,
    unsafe_disjunction_query,
    unsafe_negation_query,
)
from repro.safety.reductions import halting_reduction
from repro.safety.relative_safety import (
    EqualityRelativeSafety,
    OrderedRelativeSafety,
    RelativeSafetyUndecidable,
    SuccessorRelativeSafety,
    TraceRelativeSafety,
)


def test_equality_relative_safety_on_intro_queries():
    domain = EqualityDomain()
    decider = EqualityRelativeSafety(domain)
    state = family_state(generations=2)
    assert decider.decide(more_than_one_son_query(), state).is_finite is True
    assert decider.decide(grandfather_query(), state).is_finite is True
    assert decider.decide(unsafe_negation_query(), state).is_finite is False
    assert decider.decide(unsafe_disjunction_query(), state).is_finite is False


def test_equality_relative_safety_state_sensitivity():
    # the unsafe disjunction is actually finite in a state where nobody has two sons
    domain = EqualityDomain()
    decider = EqualityRelativeSafety(domain)
    single_child_state = family_state(generations=2, sons_per_father=1)
    assert decider.decide(unsafe_disjunction_query(), single_child_state).is_finite is True


def test_ordered_relative_safety_matches_ground_truth():
    decider = OrderedRelativeSafety(PresburgerDomain())
    state = numeric_state([2, 5, 9])
    for name, query, expected in ordered_query_corpus():
        assert decider.decide(query, state).is_finite is expected, name


def test_ordered_relative_safety_requires_decidable_domain():
    from repro.safety.extension import OrderedExtensionDomain

    undecidable = OrderedExtensionDomain(EqualityDomain())
    with pytest.raises(ValueError):
        OrderedRelativeSafety(undecidable)


def test_successor_relative_safety_matches_ground_truth():
    decider = SuccessorRelativeSafety(SuccessorDomain())
    state = numeric_state([3, 6])
    for name, query, expected in successor_query_corpus():
        assert decider.decide(query, state).is_finite is expected, name


def test_successor_relative_safety_empty_state():
    decider = SuccessorRelativeSafety(SuccessorDomain())
    state = numeric_state([])
    # with no stored members, "members" is trivially finite and "non-member" still infinite
    corpus = dict((n, q) for n, q, _f in successor_query_corpus())
    assert decider.decide(corpus["members"], state).is_finite is True
    assert decider.decide(corpus["non-member"], state).is_finite is False


def test_trace_relative_safety_refuses_and_semi_decides():
    decider = TraceRelativeSafety()
    case, word, halts = next((c, w, h) for c, w, h in halting_corpus() if h)
    query, state = halting_reduction(case.word, word)
    with pytest.raises(RelativeSafetyUndecidable):
        decider.decide(query, state)
    assert decider.semi_decide(query, state, fuel=500).is_finite is True

    diverging = next((c, w) for c, w, h in halting_corpus() if not h)
    query2, state2 = halting_reduction(diverging[0].word, diverging[1])
    assert decider.semi_decide(query2, state2, fuel=200).is_finite is None


def test_trace_relative_safety_with_oracle_matches_halting():
    decider = TraceRelativeSafety()

    def oracle(machine_word, input_word):
        for case, word, halts in halting_corpus():
            if case.word == machine_word and word == input_word:
                return halts
        raise KeyError((machine_word, input_word))

    for case, word, halts in halting_corpus():
        query, state = halting_reduction(case.word, word)
        verdict = decider.decide_with_oracle(query, state, oracle)
        assert verdict.is_finite is halts, (case.name, word)
