"""Tests for the pure-equality domain and its small-model decision procedure."""

import pytest

from repro.domains.base import DomainError, TheoryUndecidableError
from repro.domains.equality import EqualityDomain
from repro.logic.builders import conj, eq, exists, forall, neg, neq, var
from repro.logic.parser import parse_formula


def test_carrier_membership_and_enumeration():
    naturals = EqualityDomain("naturals")
    strings = EqualityDomain("strings")
    assert naturals.contains(5) and not naturals.contains("a")
    assert strings.contains("ab") and not strings.contains(3)
    assert naturals.sample_elements(4) == [0, 1, 2, 3]
    assert strings.sample_elements(3) == ["", "a", "b"]
    with pytest.raises(ValueError):
        EqualityDomain("reals")


def test_no_functions_or_predicates():
    domain = EqualityDomain()
    with pytest.raises(KeyError):
        domain.eval_function("f", [1])
    with pytest.raises(KeyError):
        domain.eval_predicate("<", [1, 2])


def test_decide_counting_sentences():
    domain = EqualityDomain()
    assert domain.decide(parse_formula("exists x. exists y. x != y"))
    assert domain.decide(parse_formula("exists x. exists y. exists z. (x != y & x != z & y != z)"))
    assert not domain.decide(parse_formula("exists x. forall y. x = y"))
    assert domain.decide(parse_formula("forall x. exists y. x != y"))
    assert domain.decide(parse_formula("forall x. forall y. (x = y | x != y)"))


def test_decide_with_constants():
    domain = EqualityDomain()
    assert domain.decide(parse_formula("exists x. x != 3"))
    assert not domain.decide(parse_formula("forall x. x = 3"))
    assert domain.decide(neg(eq(1, 2)))
    assert not domain.decide(eq(1, 2))


def test_decide_rejects_open_formulas_and_foreign_constants():
    domain = EqualityDomain()
    with pytest.raises(DomainError):
        domain.decide(parse_formula("x = 3"))
    with pytest.raises(DomainError):
        domain.decide(eq("not a natural", "not a natural"))


def test_fresh_elements():
    domain = EqualityDomain()
    fresh = domain.fresh_elements(3, avoid=[0, 1, 2])
    assert fresh == [3, 4, 5]


def test_base_domain_decide_is_unavailable():
    from repro.domains.base import Domain

    with pytest.raises(TheoryUndecidableError):
        Domain().decide(parse_formula("exists x. x = x"))
