"""Tests for the successor domain (N, '): evaluation, QE, decision procedure."""

import itertools

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.domains.base import DomainError
from repro.domains.successor import (
    SuccessorDomain,
    SuccTerm,
    eliminate_successor_quantifiers,
    extended_active_domain_elements,
    extended_active_domain_radius,
    parse_successor_term,
    successor_term_to_logic,
)
from repro.logic.analysis import free_variables
from repro.logic.builders import conj, disj, eq, exists, forall, neg, neq, var
from repro.logic.formulas import Equals, Exists, ForAll, Formula, Not, is_quantifier_free
from repro.logic.parser import parse_formula
from repro.logic.terms import Apply, Const, Var
from repro.relational.calculus import evaluate_formula

DOMAIN = SuccessorDomain()


def test_parse_and_render_successor_terms():
    term = parse_successor_term(Apply("succ", (Apply("succ", (Var("x"),)),)))
    assert term == SuccTerm("x", 2)
    assert parse_successor_term(Const(3)) == SuccTerm(None, 3)
    assert successor_term_to_logic(SuccTerm("x", 1)) == Apply("succ", (Var("x"),))
    assert successor_term_to_logic(SuccTerm(None, 2)) == Const(2)
    with pytest.raises(DomainError):
        parse_successor_term(Const(-1))
    with pytest.raises(DomainError):
        parse_successor_term(Apply("+", (Var("x"), Const(1))))


def test_domain_evaluation():
    assert DOMAIN.eval_function("succ", (3,)) == 4
    assert DOMAIN.contains(0) and not DOMAIN.contains(-1)
    with pytest.raises(KeyError):
        DOMAIN.eval_predicate("<", (1, 2))


def test_decide_basic_sentences():
    cases = [
        ("forall x. ~(succ(x) = x)", True),
        ("forall x. exists y. y = succ(x)", True),
        ("exists x. succ(x) = 0", False),
        ("exists x. succ(x) = 5", True),
        ("exists x. succ(succ(x)) = 1", False),
        ("forall x. forall y. (succ(x) = succ(y) -> x = y)", True),
        ("exists x. exists y. (succ(x) = y & succ(y) = x)", False),
        ("exists x. x != 0", True),
        ("forall x. (x = 0 | exists y. succ(y) = x)", True),
    ]
    for text, expected in cases:
        assert DOMAIN.decide(parse_formula(text)) == expected, text


def test_quantifier_elimination_output_is_quantifier_free():
    samples = [
        "exists x. succ(x) = y",
        "exists x. (succ(x) = y & x != z)",
        "exists x. (x != y & x != z & x != 3)",
        "forall x. (x != y | x = y)",
        "exists x. (succ(succ(x)) = y & succ(x) != z)",
    ]
    for text in samples:
        eliminated = eliminate_successor_quantifiers(parse_formula(text))
        assert is_quantifier_free(eliminated), text


def test_elimination_adds_nonzero_guards():
    # exists x. succ(x) = y  <=>  y != 0
    eliminated = eliminate_successor_quantifiers(parse_formula("exists x. succ(x) = y"))
    universe = range(6)
    for value in universe:
        expected = value != 0
        got = evaluate_formula(eliminated, universe, {Var("y"): value}, interpretation=DOMAIN)
        assert got == expected


def test_extended_active_domain():
    assert extended_active_domain_radius(0) == 1
    assert extended_active_domain_radius(3) == 8
    elements = extended_active_domain_elements([5], 1)
    assert {3, 4, 5, 6, 7, 0, 1, 2} <= elements
    assert 10 not in elements
    with pytest.raises(ValueError):
        extended_active_domain_radius(-1)


# --- property-based: elimination preserves semantics on samples ---------------

variables = st.sampled_from(["x", "y", "z"])


@st.composite
def successor_formulas(draw, depth=2):
    def random_term():
        base = draw(st.one_of(variables.map(Var), st.integers(0, 3).map(Const)))
        for _ in range(draw(st.integers(0, 2))):
            base = Apply("succ", (base,))
        return base

    def literal():
        equality = Equals(random_term(), random_term())
        return equality if draw(st.booleans()) else Not(equality)

    formula: Formula = literal()
    for _ in range(depth):
        other = literal()
        choice = draw(st.sampled_from(["and", "or", "exists", "forall", "skip"]))
        if choice == "and":
            formula = conj(formula, other)
        elif choice == "or":
            formula = disj(formula, other)
        elif choice == "exists":
            formula = Exists(draw(variables), conj(formula, other))
        elif choice == "forall":
            formula = ForAll(draw(variables), disj(formula, other))
    return formula


def _bounded_sampling_is_sound(formula: Formula) -> bool:
    """Whether comparing QE output by *bounded* evaluation can be trusted.

    Bounded evaluation restricts quantifiers to a finite universe, which is
    an approximation: with two or more quantifiers, a succ-term over a bound
    variable can escape the universe in a way a second quantifier observes —
    ``∃z ∀x. x ≠ succ(z)`` is bounded-true (pick z at the boundary, succ(z)
    falls outside every finite universe) but naturally false, for *every*
    universe size.  The (correct) eliminated formula evaluates to the
    natural truth, so asserting agreement on that shape is a test artifact,
    not a QE bug.  Single-quantifier formulas are safe because the sampled
    assignment values plus the bounded succ depth stay inside the universe.
    """
    from repro.logic.formulas import walk_formulas
    from repro.logic.terms import term_variables

    quantifiers = [
        sub for sub in walk_formulas(formula)
        if isinstance(sub, (Exists, ForAll))
    ]
    if len(quantifiers) < 2:
        return True
    bound = {quantifier.var for quantifier in quantifiers}

    def succ_argument_vars(term):
        if isinstance(term, Apply):
            result = set()
            for arg in term.args:
                result |= {v.name for v in term_variables(arg)}
                result |= succ_argument_vars(arg)
            return result
        return set()

    for sub in walk_formulas(formula):
        if isinstance(sub, Equals):
            escaped = succ_argument_vars(sub.left) | succ_argument_vars(sub.right)
            if escaped & bound:
                return False
    return True


@settings(max_examples=80, deadline=None)
@given(successor_formulas())
def test_elimination_agrees_on_sampled_assignments(formula):
    assume(_bounded_sampling_is_sound(formula))
    eliminated = eliminate_successor_quantifiers(formula)
    assert is_quantifier_free(eliminated)
    free = sorted(free_variables(formula) | free_variables(eliminated), key=lambda v: v.name)
    universe = list(range(9))
    for values in itertools.product(range(0, 9, 3), repeat=len(free)):
        assignment = dict(zip(free, values))
        before = evaluate_formula(formula, universe, assignment, interpretation=DOMAIN)
        after = evaluate_formula(eliminated, universe, assignment, interpretation=DOMAIN)
        assert before == after
