"""Tests for the on-disk plan store and the persistent plan cache tier."""

import os
import pickle

import pytest

from repro.domains.nat_order import NaturalOrderDomain
from repro.experiments.corpora import numeric_schema, ordered_query_corpus
from repro.relational.compile import compile_query
from repro.serve.plan_store import (
    STORE_VERSION,
    PersistentPlanCache,
    PlanStore,
    fingerprint_key,
)


def _compiled_members():
    domain = NaturalOrderDomain()
    query = dict((name, q) for name, q, _ in ordered_query_corpus())["members"]
    return query, compile_query(query, numeric_schema(), domain)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def test_fingerprint_is_stable_and_distinguishes_components():
    query, _ = _compiled_members()
    key = (query, numeric_schema(), "naturals_with_order", "compiled")
    assert fingerprint_key(key) == fingerprint_key(key)
    assert len(fingerprint_key(key)) == 64
    other = (query, numeric_schema(), "naturals_with_order", "vectorized")
    assert fingerprint_key(key) != fingerprint_key(other)


def test_fingerprint_survives_subprocess_hash_randomisation():
    # hash() of strings is salted per process; repr-based fingerprints are not.
    import subprocess
    import sys

    code = (
        "import sys; sys.path.insert(0, 'src'); "
        "from repro.serve.plan_store import fingerprint_key; "
        "print(fingerprint_key(('S(x)', 'schema', 'nat<', 'compiled')))"
    )
    runs = {
        subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=dict(os.environ, PYTHONHASHSEED=str(seed)),
        ).stdout.strip()
        for seed in (1, 2)
    }
    assert len(runs) == 1


# ---------------------------------------------------------------------------
# PlanStore durability
# ---------------------------------------------------------------------------


def test_store_roundtrips_a_compiled_query(tmp_path):
    query, compiled = _compiled_members()
    store = PlanStore(str(tmp_path / "plans"))
    key = (query, numeric_schema(), "naturals_with_order", "compiled")
    assert store.load(key) is None
    assert store.store(key, compiled)
    assert len(store) == 1
    reloaded = store.load(key)
    assert reloaded.output == compiled.output
    assert reloaded.formula == compiled.formula
    assert reloaded.summary() == compiled.summary()


def test_store_tolerates_corrupt_files(tmp_path):
    query, compiled = _compiled_members()
    store = PlanStore(str(tmp_path))
    key = ("k",)
    store.store(key, compiled)
    filename = os.path.join(str(tmp_path), fingerprint_key(key) + ".plan")
    with open(filename, "wb") as handle:
        handle.write(b"\x80garbage not a pickle")
    assert store.load(key) is None
    assert store.corrupt_dropped == 1
    assert not os.path.exists(filename)  # dropped, not re-read forever


def test_store_rejects_version_skew(tmp_path):
    store = PlanStore(str(tmp_path))
    key = ("k",)
    filename = os.path.join(str(tmp_path), fingerprint_key(key) + ".plan")
    payload = {
        "version": STORE_VERSION + 1,
        "fingerprint": fingerprint_key(key),
        "value": 42,
    }
    with open(filename, "wb") as handle:
        pickle.dump(payload, handle)
    assert store.load(key) is None
    assert store.corrupt_dropped == 1


def test_store_rejects_fingerprint_mismatch(tmp_path):
    store = PlanStore(str(tmp_path))
    key, other = ("k",), ("other",)
    store.store(other, 42)
    # mis-file the payload under the wrong name
    os.replace(
        os.path.join(str(tmp_path), fingerprint_key(other) + ".plan"),
        os.path.join(str(tmp_path), fingerprint_key(key) + ".plan"),
    )
    assert store.load(key) is None
    assert store.corrupt_dropped == 1


def test_store_skips_unpicklable_values(tmp_path):
    store = PlanStore(str(tmp_path))
    assert not store.store(("k",), lambda: None)
    assert store.store_errors == 1
    assert len(store) == 0


def test_store_clear_removes_entries(tmp_path):
    store = PlanStore(str(tmp_path))
    store.store(("a",), 1)
    store.store(("b",), 2)
    assert len(store) == 2
    store.clear()
    assert len(store) == 0 and store.load(("a",)) is None


# ---------------------------------------------------------------------------
# PersistentPlanCache: memory over disk
# ---------------------------------------------------------------------------


def test_persistent_cache_writes_through_and_survives_restart(tmp_path):
    query, compiled = _compiled_members()
    store = PlanStore(str(tmp_path))
    key = (query, numeric_schema(), "naturals_with_order", "compiled")

    first = PersistentPlanCache(maxsize=8, store=store)
    first.put(key, compiled)
    assert first.get(key) is compiled        # memory hit
    assert len(store) == 1                    # written through

    # a "restarted process": fresh memory tier over the same store
    second = PersistentPlanCache(maxsize=8, store=PlanStore(str(tmp_path)))
    reloaded = second.get(key)
    assert reloaded is not None and reloaded.summary() == compiled.summary()
    assert second.disk_hits == 1
    # promoted into memory: the next get is a pure memory hit
    assert second.get(key) is reloaded
    assert second.info().hits == 1


def test_persistent_cache_counts_double_misses(tmp_path):
    cache = PersistentPlanCache(maxsize=8, store=PlanStore(str(tmp_path)))
    assert cache.get(("absent",)) is None
    assert cache.disk_misses == 1 and cache.disk_hits == 0


def test_persistent_cache_without_store_is_a_plain_plan_cache():
    cache = PersistentPlanCache(maxsize=2, store=None)
    cache.put("a", 1)
    assert cache.get("a") == 1 and cache.get("b") is None
    assert cache.disk_hits == 0 and cache.disk_misses == 0


def test_eviction_from_memory_still_serves_from_disk(tmp_path):
    store = PlanStore(str(tmp_path))
    cache = PersistentPlanCache(maxsize=1, store=store)
    cache.put(("a",), "plan-a")
    cache.put(("b",), "plan-b")              # evicts ("a",) from memory
    assert cache.info().evictions == 1
    assert cache.get(("a",)) == "plan-a"     # disk tier remembers
    assert cache.disk_hits == 1


def test_session_manager_uses_persistent_cache_when_policy_names_a_store(tmp_path):
    from repro.serve import ServerPolicy, SessionManager

    policy = ServerPolicy(plan_store_path=str(tmp_path / "plans"))
    manager = SessionManager(policy)
    try:
        assert isinstance(manager.plan_cache, PersistentPlanCache)
        assert manager.plan_cache.store is not None
        assert manager.plan_cache.store.path == str(tmp_path / "plans")
    finally:
        manager.shutdown()


def test_warm_restart_skips_compilation(tmp_path, monkeypatch):
    """The acceptance-criteria mechanism: a populated store means a fresh
    process (fresh memory tier) serves compiles from disk instead of calling
    compile_query."""
    from repro.domains.registry import get_entry
    from repro.serve import ServerPolicy, SessionManager

    numeric = numeric_schema()
    queries = [q for _, q, finite in ordered_query_corpus() if finite]
    state_rows = {"S": [(3,), (5,), (9,)]}

    policy = ServerPolicy(plan_store_path=str(tmp_path / "plans"))
    cold = SessionManager(policy)
    try:
        managed = cold.connect("nat<", numeric)
        state = managed.session.state(state_rows)
        for query in queries:
            cold.run_query(
                managed.session_id, query, state, strategy="vectorized"
            )
    finally:
        cold.shutdown()

    import repro.engine.plans as plans_module

    def forbidden_compile(*args, **kwargs):
        raise AssertionError("warm restart should not compile")

    warm = SessionManager(policy)  # fresh memory tier, same store directory
    try:
        monkeypatch.setattr(plans_module, "compile_query", forbidden_compile)
        managed = warm.connect("nat<", numeric)
        state = managed.session.state(state_rows)
        answers = [
            warm.run_query(managed.session_id, query, state, strategy="vectorized")
            for query in queries
        ]
        assert all(result.answer.rows() for result in answers)
        assert warm.plan_cache.disk_hits == len(queries)
    finally:
        warm.shutdown()
    assert get_entry("nat<").supports_vectorized  # sanity: the strategy is real
