"""The deterministic fault-injection harness and the substrate breaker."""

import pytest

from repro import Budget
from repro.engine.breaker import SubstrateBreaker, default_breaker
from repro.engine.plans import ParallelAlgebraPlan, VectorizedAlgebraPlan
from repro.relational.columnar import HAVE_NUMPY
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.state import DatabaseState
from repro.serve.plan_store import PersistentPlanCache, PlanStore
from repro.testing import faults
from repro.testing.faults import FaultPlan, FaultSpec, InjectedFault, fire, inject


# ---------------------------------------------------------------------------
# FaultSpec / FaultPlan mechanics
# ---------------------------------------------------------------------------


def test_spec_rejects_unknown_point_and_kind():
    with pytest.raises(ValueError):
        FaultSpec("no-such-point", "exception")
    with pytest.raises(ValueError):
        FaultSpec("kernel-entry", "no-such-kind")


def test_fire_is_a_noop_without_an_active_plan():
    fire("kernel-entry")  # must not raise


def test_spec_triggers_at_its_offset_then_stops():
    plan = FaultPlan([FaultSpec("kernel-entry", "exception", after=2, count=1)])
    with inject(plan):
        fire("kernel-entry")  # hit 0
        fire("kernel-entry")  # hit 1
        with pytest.raises(InjectedFault) as excinfo:
            fire("kernel-entry")  # hit 2: trips
        fire("kernel-entry")  # hit 3: past the count window
    assert excinfo.value.point == "kernel-entry"
    assert excinfo.value.hit == 2
    assert plan.hits() == {"kernel-entry": 4}
    assert plan.fired() == {"kernel-entry": 1}


def test_injection_does_not_nest():
    plan = FaultPlan([FaultSpec("kernel-entry", "exception")])
    with inject(plan):
        with pytest.raises(RuntimeError, match="does not nest"):
            with inject(plan):
                pass
    # and the outer exit restored the inactive state
    assert faults.active() is None


def test_seeded_plans_and_the_matrix_are_deterministic():
    assert repr(FaultPlan.seeded(7)) == repr(FaultPlan.seeded(7))
    first = [(p.label, p.specs) for p in FaultPlan.matrix("ci")]
    second = [(p.label, p.specs) for p in FaultPlan.matrix("ci")]
    assert first == second
    # one plan per applicable (point, kind) pair
    assert len(first) == 2 * 3 + 3  # exception/delay everywhere + corrupt on io
    points = {spec.point for _, specs in first for spec in specs}
    assert points == set(faults.INJECTION_POINTS)


def test_corrupt_mangles_bytes_but_keeps_length():
    blob = bytes(range(64))
    plan = FaultPlan([FaultSpec("plan-store-io", "corrupt-pickle")])
    with inject(plan):
        mangled = faults.corrupt("plan-store-io", blob)
    assert len(mangled) == len(blob)
    assert mangled != blob
    # inactive: pass-through
    assert faults.corrupt("plan-store-io", blob) == blob


# ---------------------------------------------------------------------------
# The breaker state machine
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_opens_after_threshold_and_recovers_via_probe():
    clock = FakeClock()
    breaker = SubstrateBreaker(threshold=3, cooldown=10.0, clock=clock)
    assert breaker.allow("vectorized")
    for _ in range(2):
        breaker.record_fault("vectorized", RuntimeError("boom"))
        assert breaker.state("vectorized") == "closed"
    breaker.record_fault("vectorized", RuntimeError("boom"))
    assert breaker.state("vectorized") == "open"
    assert not breaker.allow("vectorized")
    # cooldown elapses: one probe is admitted (half-open)
    clock.now = 10.0
    assert breaker.allow("vectorized")
    assert breaker.state("vectorized") == "half-open"
    # the probe succeeds: closed again
    breaker.record_success("vectorized")
    assert breaker.state("vectorized") == "closed"


def test_half_open_probe_failure_reopens_immediately():
    clock = FakeClock()
    breaker = SubstrateBreaker(threshold=1, cooldown=5.0, clock=clock)
    breaker.record_fault("parallel")
    assert breaker.state("parallel") == "open"
    clock.now = 5.0
    assert breaker.allow("parallel")  # the probe
    breaker.record_fault("parallel")  # probe fails: open again, fresh cooldown
    assert breaker.state("parallel") == "open"
    clock.now = 9.0
    assert not breaker.allow("parallel")


def test_success_resets_the_consecutive_fault_count():
    breaker = SubstrateBreaker(threshold=2, cooldown=30.0)
    breaker.record_fault("vectorized")
    breaker.record_success("vectorized")
    breaker.record_fault("vectorized")
    assert breaker.state("vectorized") == "closed"  # never 2 in a row


def test_snapshot_is_json_ready():
    breaker = SubstrateBreaker(threshold=1, cooldown=30.0)
    breaker.record_fault("vectorized", RuntimeError("kernel exploded"))
    snapshot = breaker.snapshot()
    assert snapshot["threshold"] == 1
    entry = snapshot["substrates"]["vectorized"]
    assert entry["state"] == "open"
    assert entry["total_faults"] == 1
    assert "kernel exploded" in entry["last_fault"]
    assert default_breaker() is default_breaker()  # process-wide singleton


# ---------------------------------------------------------------------------
# Faults flow into the fallback ladder
# ---------------------------------------------------------------------------


def nat_fixture():
    from repro.domains.registry import get_domain

    schema = DatabaseSchema((RelationSchema("F", 2),))
    state = DatabaseState(schema, {"F": [(1, 2), (2, 3), (3, 4)]})
    return get_domain("nat<"), state


@pytest.mark.skipif(not HAVE_NUMPY, reason="kernel-entry lives in the columnar executor")
def test_injected_kernel_fault_falls_back_to_the_set_executor():
    from repro.logic.parser import parse_formula

    domain, state = nat_fixture()
    breaker = SubstrateBreaker(threshold=3, cooldown=30.0)
    plan = VectorizedAlgebraPlan(domain=domain, budget=Budget(), breaker=breaker)
    query = parse_formula("F(x, y)")
    with inject(FaultPlan([FaultSpec("kernel-entry", "exception")])):
        answer = plan.execute(query, state)
    assert frozenset(answer.relation.rows) == frozenset({(1, 2), (2, 3), (3, 4)})
    assert answer.method == "compiled-algebra"  # the rung below caught it
    assert "faulted" in (plan.fallback_reason or "")
    assert breaker.snapshot()["substrates"]["vectorized"]["total_faults"] == 1


@pytest.mark.skipif(not HAVE_NUMPY, reason="pool-submit lives in the parallel executor")
def test_repeated_faults_demote_the_substrate_until_cooldown():
    from repro.logic.parser import parse_formula

    domain, state = nat_fixture()
    clock = FakeClock()
    breaker = SubstrateBreaker(threshold=2, cooldown=60.0, clock=clock)
    plan = ParallelAlgebraPlan(
        domain=domain, budget=Budget(), breaker=breaker,
        parallel_threshold=1, morsel_rows=2,
    )
    query = parse_formula("F(x, y)")
    expected = frozenset({(1, 2), (2, 3), (3, 4)})
    with inject(FaultPlan([FaultSpec("pool-submit", "exception", count=None)])):
        for _ in range(2):  # two faults: the breaker trips
            answer = plan.execute(query, state)
            assert frozenset(answer.relation.rows) == expected
        assert breaker.state("parallel") == "open"
        # demoted: the pool is skipped up front, and explain says so
        answer = plan.execute(query, state)
        assert frozenset(answer.relation.rows) == expected
        assert "breaker" in (plan.fallback_reason or "")
        assert "parallel breaker" in plan.explain()


# ---------------------------------------------------------------------------
# Plan-store fault tolerance
# ---------------------------------------------------------------------------


def test_corrupted_store_read_degrades_to_a_miss(tmp_path):
    store = PlanStore(str(tmp_path))
    assert store.store(("k",), {"payload": 123})
    with inject(FaultPlan([FaultSpec("plan-store-io", "corrupt-pickle")])):
        assert store.load(("k",)) is None
    assert store.corrupt_dropped == 1
    assert len(store) == 0  # the mangled file was deleted, not re-read forever


def test_store_write_fault_degrades_to_no_persistence(tmp_path):
    store = PlanStore(str(tmp_path))
    with inject(FaultPlan([FaultSpec("plan-store-io", "exception")])):
        assert store.store(("k",), {"payload": 123}) is False
    assert store.store_errors == 1
    assert store.store(("k",), {"payload": 123})  # recovered afterwards


def test_persistent_cache_survives_store_faults(tmp_path):
    cache = PersistentPlanCache(maxsize=4, store=PlanStore(str(tmp_path)))
    with inject(FaultPlan([FaultSpec("plan-store-io", "exception", count=None)])):
        cache.put(("k",), "value")          # write-through fails silently
        assert cache.get(("k",)) == "value"  # memory tier still serves it
