"""Tests for Presburger arithmetic: linear terms, Cooper QE, the decision procedure."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.domains.base import DomainError
from repro.domains.presburger import (
    LinTerm,
    PresburgerDomain,
    eliminate_presburger_quantifiers,
    linearize_term,
)
from repro.experiments.corpora import presburger_sentences
from repro.logic.builders import atom, conj, disj, exists, forall, implies, neg, var
from repro.logic.formulas import is_quantifier_free
from repro.logic.parser import parse_formula, parse_term
from repro.logic.terms import Const, Var


def test_linterm_arithmetic():
    t = LinTerm.of(3, x=2, y=-1)
    assert t.coeff_of("x") == 2 and t.coeff_of("z") == 0
    assert t.add(LinTerm.of(1, x=-2)).coeff_of("x") == 0
    assert t.scale(2).constant == 6
    assert t.substitute("x", LinTerm.of(5)).constant == 13
    assert t.evaluate({"x": 1, "y": 2}) == 3 + 2 - 2
    assert LinTerm.of(4).is_constant()


def test_linearize_term():
    assert linearize_term(parse_term("x + 2 * y + 1")) == LinTerm.of(1, x=1, y=2)
    assert linearize_term(parse_term("succ(x)")) == LinTerm.of(1, x=1)
    assert linearize_term(parse_term("x - y")) == LinTerm.of(0, x=1, y=-1)
    with pytest.raises(DomainError):
        linearize_term(parse_term("x * y"))
    with pytest.raises(DomainError):
        linearize_term(parse_term("f(x)"))


def test_domain_evaluation():
    domain = PresburgerDomain()
    assert domain.eval_predicate("<", (1, 2))
    assert domain.eval_predicate("divides", (3, 9))
    assert not domain.eval_predicate("divides", (3, 10))
    assert domain.eval_function("+", (2, 3)) == 5
    assert domain.eval_function("succ", (4,)) == 5
    assert domain.contains(0) and not domain.contains(-1) and not domain.contains("x")
    integers = PresburgerDomain("integers")
    assert integers.contains(-5)
    assert integers.sample_elements(5) == [0, 1, -1, 2, -2]


def test_decide_corpus_sentences():
    domain = PresburgerDomain()
    for name, sentence, expected in presburger_sentences():
        assert domain.decide(sentence) == expected, name


def test_decide_divisibility_sentences():
    domain = PresburgerDomain()
    assert domain.decide(parse_formula("forall x. exists y. (x = y + y | x = y + y + 1)"))
    assert domain.decide(parse_formula("exists x. (divides(3, x) & divides(5, x) & 0 < x)"))
    assert not domain.decide(parse_formula("exists x. (divides(2, x) & divides(2, x + 1))"))


def test_integers_versus_naturals():
    naturals = PresburgerDomain("naturals")
    integers = PresburgerDomain("integers")
    sentence = parse_formula("exists x. x + 1 = 0")
    assert not naturals.decide(sentence)
    assert integers.decide(sentence)
    least = parse_formula("exists x. forall y. (x <= y)")
    assert naturals.decide(least)
    assert not integers.decide(least)


def test_quantifier_elimination_is_quantifier_free():
    formula = parse_formula("exists y. (x < y & y < z)")
    eliminated = eliminate_presburger_quantifiers(formula, naturals=True)
    assert is_quantifier_free(eliminated)


def test_decide_requires_sentence():
    domain = PresburgerDomain()
    with pytest.raises(DomainError):
        domain.decide(parse_formula("x < 3"))


# --- property-based validation of Cooper's elimination ------------------------

BOUND = 4


@st.composite
def bounded_sentences(draw):
    """Random sentences with explicitly bounded quantifiers over 0..BOUND-1."""
    x, y = Var("x"), Var("y")

    def bounded(variable, body, existential):
        guard = atom("<", variable, Const(BOUND))
        if existential:
            return exists(variable.name, conj(guard, body))
        return forall(variable.name, implies(guard, body))

    def random_atom(vars_available):
        left = draw(st.sampled_from(vars_available))
        right = draw(st.sampled_from(vars_available))
        constant = draw(st.integers(0, 4))
        kind = draw(st.sampled_from(["lt", "le", "eq-offset", "sum"]))
        if kind == "lt":
            return atom("<", left, right)
        if kind == "le":
            return atom("<=", left, Const(constant))
        if kind == "eq-offset":
            return parse_formula(f"{left.name} = {right.name} + {constant}")
        return parse_formula(f"{left.name} + {right.name} < {constant + 3}")

    inner = random_atom([x, y])
    for _ in range(draw(st.integers(0, 2))):
        connective = draw(st.sampled_from(["and", "or", "not"]))
        other = random_atom([x, y])
        if connective == "and":
            inner = conj(inner, other)
        elif connective == "or":
            inner = disj(inner, other)
        else:
            inner = neg(inner)
    sentence = bounded(x, bounded(y, inner, draw(st.booleans())), draw(st.booleans()))
    return sentence


def _brute_force(sentence):
    """Evaluate a bounded sentence by explicit search over 0..BOUND+4."""
    domain = PresburgerDomain()
    universe = list(range(BOUND + 5))
    from repro.relational.calculus import evaluate_formula

    return evaluate_formula(sentence, universe, {}, interpretation=domain)


@settings(max_examples=60, deadline=None)
@given(bounded_sentences())
def test_cooper_agrees_with_brute_force_on_bounded_sentences(sentence):
    domain = PresburgerDomain()
    assert domain.decide(sentence) == _brute_force(sentence)
