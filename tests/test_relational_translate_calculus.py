"""Tests for active domains, database-atom expansion, and calculus evaluation."""

import pytest

from repro.domains.equality import EqualityDomain
from repro.domains.nat_order import NaturalOrderDomain
from repro.logic.builders import atom, conj, disj, eq, exists, forall, neg, var
from repro.logic.formulas import Bottom
from repro.logic.terms import Const, Var
from repro.relational.active_domain import (
    active_domain,
    active_domain_of_query,
    active_domain_of_state,
)
from repro.relational.calculus import evaluate_formula, evaluate_query, evaluate_query_active_domain
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.state import DatabaseState
from repro.relational.translate import (
    database_predicates_in,
    expand_database_atoms,
    is_pure_domain_formula,
)

SCHEMA = DatabaseSchema((RelationSchema("F", 2), RelationSchema("S", 1)))


def make_state():
    return DatabaseState(SCHEMA, {"F": [(1, 2), (2, 3)], "S": [(5,)]})


def test_active_domain_components():
    state = make_state()
    query = conj(atom("F", var("x"), var("y")), eq(var("x"), Const(9)))
    assert active_domain_of_state(state) == frozenset({1, 2, 3, 5})
    assert active_domain_of_query(query) == frozenset({9})
    assert active_domain(state, query) == frozenset({1, 2, 3, 5, 9})


def test_expand_database_atoms():
    state = make_state()
    query = atom("F", var("x"), var("y"))
    expanded = expand_database_atoms(query, state)
    assert is_pure_domain_formula(expanded, SCHEMA)
    assert database_predicates_in(query, SCHEMA) == frozenset({"F"})
    # expansion of an empty relation is Bottom
    empty = DatabaseState(SCHEMA, {})
    assert isinstance(expand_database_atoms(query, empty), Bottom)


def test_expand_preserves_semantics_on_universe():
    state = make_state()
    domain = EqualityDomain()
    query = exists("y", conj(atom("F", var("x"), var("y")), neg(eq(var("x"), var("y")))))
    expanded = expand_database_atoms(query, state)
    universe = sorted(active_domain(state, query))
    for value in universe:
        with_state = evaluate_formula(query, universe, {Var("x"): value}, state, domain)
        pure = evaluate_formula(expanded, universe, {Var("x"): value}, None, domain)
        assert with_state == pure


def test_evaluate_formula_quantifiers_and_atoms():
    state = make_state()
    domain = NaturalOrderDomain()
    universe = [1, 2, 3, 5]
    formula = forall("x", exists("y", disj(atom("F", var("x"), var("y")),
                                            atom("<", var("y"), var("x")),
                                            eq(var("x"), var("y")))))
    assert evaluate_formula(formula, universe, {}, state, domain)


def test_evaluate_formula_unknown_predicate_raises():
    state = make_state()
    with pytest.raises(KeyError):
        evaluate_formula(atom("Mystery", var("x")), [1], {Var("x"): 1}, state, None)


def test_evaluate_query_and_active_domain_query():
    state = make_state()
    domain = EqualityDomain()
    query = exists("y", atom("F", var("x"), var("y")))
    answer = evaluate_query(query, [1, 2, 3, 5], state=state, interpretation=domain)
    assert answer.rows == {(1,), (2,)}
    active = evaluate_query_active_domain(query, state, interpretation=domain)
    assert active.rows == {(1,), (2,)}
    zero_ary = evaluate_query(exists("x", atom("S", var("x"))), [5], state=state, interpretation=domain)
    assert zero_ary.rows == {()}


def test_evaluate_term_requires_assignment():
    from repro.relational.calculus import evaluate_term

    with pytest.raises(KeyError):
        evaluate_term(Var("x"), {}, None)
    assert evaluate_term(Const(4), {}, None) == 4
