#!/usr/bin/env python3
"""The successor domain ``(N, ')`` of Section 2.2: QE, relative safety, 2^q syntax.

The point of Section 2.2 is that an effective syntax does not need a discrete
order: the unordered naturals with only the successor function also admit one,
via quantifier elimination and the *extended active domain* of radius ``2^q``.

Run with:  python examples/successor_domain.py
"""

from repro.domains import SuccessorDomain, eliminate_successor_quantifiers
from repro.domains.successor import extended_active_domain_elements
from repro.experiments.corpora import numeric_schema, numeric_state, successor_query_corpus
from repro.logic import parse_formula, print_formula, quantifier_depth
from repro.relational import evaluate_query, expand_database_atoms
from repro.safety import ExtendedActiveDomainSyntax, SuccessorRelativeSafety


def main() -> None:
    domain = SuccessorDomain()
    schema = numeric_schema()
    state = numeric_state([3, 6])

    # --- quantifier elimination ----------------------------------------------
    print("Quantifier elimination in (N, ') — Section 2.2 / Mal'cev:")
    samples = [
        "exists x. succ(x) = y",
        "exists x. (succ(succ(x)) = y & ~(x = 0))",
        "forall x. ~(succ(x) = x)",
    ]
    for text in samples:
        formula = parse_formula(text)
        eliminated = eliminate_successor_quantifiers(formula)
        print(f"    {text:45s} ->  {print_formula(eliminated)}")
    print()

    # --- relative safety (Theorem 2.6) ---------------------------------------
    print("Relative safety over (N, ') — Theorem 2.6, state S = {3, 6}:")
    decider = SuccessorRelativeSafety(domain)
    for name, query, expected in successor_query_corpus():
        verdict = decider.decide(query, state)
        print(f"    {name:28s} ground-truth finite={expected!s:5s} decided={verdict.status.value}")
    print()

    # --- the extended active domain and the Theorem 2.7 syntax ---------------
    print("The extended active domain (radius 2^q) and the Theorem 2.7 syntax:")
    name, query, _ = successor_query_corpus()[1]   # successor-of-member (finite)
    depth = quantifier_depth(query)
    extended = extended_active_domain_elements([3, 6], depth)
    print(f"    query {name!r} has quantifier depth {depth}; extended active domain:")
    print(f"    {sorted(extended)}")
    syntax = ExtendedActiveDomainSyntax(schema)
    restricted = syntax.restrict(query)
    universe = list(range(0, 14))
    raw = evaluate_query(query, universe, state=state, interpretation=domain).rows
    guarded = evaluate_query(restricted, universe, state=state, interpretation=domain).rows
    print(f"    answer of the query:            {sorted(raw)}")
    print(f"    answer of its syntax member:    {sorted(guarded)}")
    print("    (identical — the syntax loses nothing on finite queries, and its")
    print("     guard makes every admitted query finite.)")


if __name__ == "__main__":
    main()
