#!/usr/bin/env python3
"""A database of computational experiments over the trace domain **T**.

The paper motivates the domain **T** as "a natural choice in several
applications related to storing results of computations, for example in
databases of computational experiments".  This example builds such a
database: a relation of (experiment name, input word) pairs, queried with the
trace predicate ``P``.

It then walks through the paper's negative results on concrete machines:

* the query ``M(x) = P(M, c, x)`` is finite exactly when the machine halts on
  the stored input (Theorem 3.3 — relative safety reduces from halting);
* the Theorem 3.1 certification procedure, driven by the decidable theory of
  traces, certifies exactly the total machines of a small corpus.

Run with:  python examples/computational_experiments_db.py
"""

from repro.domains import ReachTracesDomain, TraceDomain
from repro.logic import Const, atom, conj, exists, print_formula, var
from repro.relational import DatabaseSchema, DatabaseState, RelationSchema
from repro.safety import (
    TotalityEnumerator,
    TraceRelativeSafety,
    halting_reduction,
    query_answer_when_finite,
    totality_query,
)
from repro.turing import (
    encode_machine,
    halt_if_marked_else_loop,
    loop_forever,
    trace_count,
    unary_eraser,
)


def main() -> None:
    trace_domain = TraceDomain()

    # A tiny "lab notebook": which machine was run on which input.
    schema = DatabaseSchema((RelationSchema("Run", 2, ("machine", "input")),))
    eraser = encode_machine(unary_eraser())
    picky = encode_machine(halt_if_marked_else_loop())
    looper = encode_machine(loop_forever())
    state = DatabaseState(schema, {"Run": [
        (eraser, "111"), (picky, "1&1"), (picky, "&11"), (looper, "1"),
    ]})
    print("Experiment database:", state.total_rows(), "recorded runs\n")

    # Query: all traces of recorded runs (finite iff every recorded run halts).
    m, w, p = var("m"), var("w"), var("p")
    all_traces = exists("m", exists("w", conj(atom("Run", m, w), atom("P", m, w, p))))
    print("Query (all traces of recorded runs):")
    print("   ", print_formula(all_traces), "\n")

    for machine_word, input_word in sorted(state["Run"]):
        count = trace_count(machine_word, input_word, fuel=200)
        label = "finite" if count is not None else "infinite (machine diverges)"
        print(f"    run ({machine_word[:14]}..., {input_word!r}): trace set is {label}"
              + (f", {count} traces" if count is not None else ""))
    print()

    # Theorem 3.3: relative safety of M(x) in state c := w is the halting problem.
    decider = TraceRelativeSafety()
    print("Theorem 3.3 — relative safety is the halting problem:")
    for input_word in ("1&1", "&11"):
        query, reduction_state = halting_reduction(picky, input_word)
        verdict = decider.semi_decide(query, reduction_state, fuel=200)
        answer = query_answer_when_finite(picky, input_word, fuel=200)
        print(f"    input {input_word!r}: semi-decision = {verdict.status.value}",
              f"({len(answer)} traces materialised)" if answer is not None else
              "(no bound on the trace set was found)")
    print()

    # Theorem 3.1: the certification procedure enumerates total machines.
    print("Theorem 3.1 — certifying totality through the decidable theory of traces:")
    enumerator = TotalityEnumerator(ReachTracesDomain())
    machines = {"unary_eraser": eraser, "halt_if_marked_else_loop": picky, "loop_forever": looper}
    candidates = [totality_query(eraser)]
    certified = {c.machine_word for c in enumerator.enumerate_certified(list(machines.values()), candidates)}
    for name, word in machines.items():
        print(f"    {name}: certified total = {word in certified}")
    print("\n    (only the eraser — the only total machine above — is certified;")
    print("     a complete effective syntax would have to certify *every* total")
    print("     machine, yielding an enumeration that cannot exist.)")


if __name__ == "__main__":
    main()
