#!/usr/bin/env python3
"""Quickstart: the unified Session API on the paper's father/son database.

``repro.connect`` opens a :class:`repro.api.Session` that owns the whole
compile → analyze → plan → execute pipeline:

* queries are written as relational-calculus **text** and parsed by the
  session;
* the **plan** explains which evaluation strategy was chosen and why;
* the relative-safety guard **rejects** provably infinite answers;
* a **budget** bounds the Section 1.1 enumeration on queries that might be
  infinite.

Run with:  python examples/quickstart.py
"""

import repro
from repro import Budget
from repro.experiments.corpora import family_schema, family_state


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Connect to the pure-equality domain with the father/son schema.
    # ------------------------------------------------------------------
    session = repro.connect(domain="eq", schema=family_schema())
    state = family_state(generations=3, sons_per_father=2)

    print("Session:", session)
    print("Database scheme:", session.schema)
    print(f"Database state: {state.total_rows()} father/son rows")
    print("Chosen plan:", session.plan().explain())
    print()

    # Queries are plain calculus text, parsed and validated by the session.
    queries = [
        ("M(x)  — more than one son",
         "exists y. exists z. (F(x, y) & F(x, z) & ~(y = z))"),
        ("G(x,z) — grandfather/grandson",
         "exists y. (F(x, y) & F(y, z))"),
        ("~F(x,y) — unsafe negation",
         "~F(x, y)"),
        ("M(x) | G(x,z) — unsafe disjunction",
         "(exists y. exists z. (F(x, y) & F(x, z) & ~(y = z))) "
         "| (exists y. (F(x, y) & F(y, z)))"),
    ]

    for title, text in queries:
        print(f"--- {title}")
        print("    text:", text)
        analysis = session.analyze(text, state)
        print("    analysis:", analysis.explain())
        result = session.run(text, state)
        print("    answer:", result.answer.explain())
        rows = result.answer.rows()
        if rows:
            print("    rows:", list(rows[:6]), "..." if len(rows) > 6 else "")
        print()

    # ------------------------------------------------------------------
    # 2. The effective syntax as an opt-in rewrite: restrict=True maps
    #    every query into the active-domain syntax, so even the unsafe
    #    disjunction comes back finite.
    # ------------------------------------------------------------------
    restricted = repro.connect(domain="eq", schema=family_schema(), restrict=True)
    outcome = restricted.run(queries[3][1], state, strategy="auto")
    print("Guarded evaluation of the unsafe disjunction under restrict=True:")
    print("    query rewritten by the syntax guard:", outcome.rewritten)
    print("    rows returned:", len(outcome.answer.rows()))
    print("    (the restriction keeps only active-domain tuples, so the answer is finite)")
    print()

    # ------------------------------------------------------------------
    # 3. Budgeted enumeration over Presburger arithmetic: no schema needed,
    #    the Section 1.1 algorithm enumerates the domain itself.
    # ------------------------------------------------------------------
    numbers = repro.connect(domain="presburger")
    finite = numbers.query("x < 5", budget=Budget(max_rows=10, max_candidates=100))
    print("Presburger, 'x < 5':", finite.explain())
    print("    rows:", list(finite.rows()))

    rejected = numbers.run("3 < x")
    print("Presburger, '3 < x' (auto):", rejected.answer.explain())

    exhausted = numbers.query(
        "3 < x", strategy="enumeration", budget=Budget(max_rows=4, max_candidates=50)
    )
    print("Presburger, '3 < x' (forced enumeration):", exhausted.explain())
    print("    partial rows:", list(exhausted.rows()))
    print()

    # ------------------------------------------------------------------
    # 4. The vectorized NumPy columnar executor and the plan cache.
    #    Guard-certified queries over the equality domain compile to
    #    relational algebra and run on int64 column arrays (strategy
    #    "vectorized"); repeated queries skip compilation via the session's
    #    LRU plan cache, keyed (formula, schema, domain, substrate).
    #    (See "Which plan fires when" in docs/ARCHITECTURE.md.)
    # ------------------------------------------------------------------
    big_state = family_state(generations=5, sons_per_father=2)
    grandfather = "exists y. (F(x, y) & F(y, z))"
    first = session.run(grandfather, big_state)
    again = session.run(grandfather, big_state)
    print(f"Vectorized backend on {big_state.total_rows()} father/son rows:")
    print("    answer method:", first.answer.method)
    print("    plan:", first.plan.inner.explain().split(";")[0])
    print(f"    {len(first.answer.rows())} grandfather/grandson pairs "
          f"in {again.elapsed * 1000:.2f} ms (plan served from cache)")
    print("    plan cache:", session.plan_cache_info())
    print()

    # ------------------------------------------------------------------
    # 5. The transparent fallback ladder, demonstrated on the trace domain:
    #    its predicate P ranges over machine words (strings), which
    #    dictionary-encode fine, but P itself has no array kernel — so an
    #    explicitly requested "vectorized" plan executes on the
    #    set-at-a-time executor instead, and explain() says why.
    # ------------------------------------------------------------------
    from repro.relational.schema import DatabaseSchema, RelationSchema

    word_schema = DatabaseSchema((RelationSchema("W", 1, ("word",)),))
    traces = repro.connect(domain="traces", schema=word_schema)
    plan = traces.plan("vectorized")
    trace_state = traces.state(W=[("1",), ("11",), ("1&1",)])
    answer = traces.execute(plan, "W(x) & P(x, x, x)", trace_state)
    print("Trace domain, strategy='vectorized' on W(x) & P(x, x, x):")
    print("    answer method:", answer.method)
    print("    fallback reason:", plan.fallback_reason)


if __name__ == "__main__":
    main()
