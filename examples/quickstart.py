#!/usr/bin/env python3
"""Quickstart: the paper's father/son database, safe and unsafe queries.

This example reproduces the opening of the paper: a database scheme with one
binary relation ``F`` (father/son), the queries ``M(x)`` ("has more than one
son") and ``G(x, z)`` ("grandfather/grandson"), and the unsafe formulas
``¬F(x, y)`` and ``M(x) ∨ G(x, z)``.  It answers the safe queries, shows the
relative-safety decider rejecting the unsafe ones, and demonstrates the
active-domain effective syntax.

Run with:  python examples/quickstart.py
"""

from repro.domains import EqualityDomain
from repro.engine import GuardedEngine, QueryEngine
from repro.experiments.corpora import family_schema, family_state
from repro.experiments.exp01_intro_queries import (
    grandfather_query,
    more_than_one_son_query,
    unsafe_disjunction_query,
    unsafe_negation_query,
)
from repro.logic import print_formula
from repro.safety import ActiveDomainSyntax, EqualityRelativeSafety


def main() -> None:
    schema = family_schema()
    state = family_state(generations=3, sons_per_father=2)
    domain = EqualityDomain()
    engine = QueryEngine(domain, schema)
    decider = EqualityRelativeSafety(domain)

    print("Database scheme:", schema)
    print(f"Database state: {state.total_rows()} father/son rows\n")

    queries = [
        ("M(x)  — more than one son", more_than_one_son_query()),
        ("G(x,z) — grandfather/grandson", grandfather_query()),
        ("~F(x,y) — unsafe negation", unsafe_negation_query()),
        ("M(x) | G(x,z) — unsafe disjunction", unsafe_disjunction_query()),
    ]

    for title, query in queries:
        print(f"--- {title}")
        print("   ", print_formula(query))
        verdict = decider.decide(query, state)
        print("    relative safety:", verdict.status.value, "—", verdict.details)
        if verdict.is_finite:
            answer = engine.answer_active_domain(query, state)
            print(f"    answer ({len(answer.relation)} rows):",
                  sorted(answer.relation)[:6], "..." if len(answer.relation) > 6 else "")
        print()

    # The effective syntax for this domain: restrict answers to the active domain.
    syntax = ActiveDomainSyntax(schema)
    guarded = GuardedEngine(engine, syntax=syntax, safety=decider)
    unsafe = unsafe_disjunction_query()
    outcome = guarded.answer(unsafe, state, strategy="active-domain")
    print("Guarded evaluation of the unsafe disjunction:")
    print("    query rewritten by the syntax guard:", outcome.rewritten)
    print("    rows returned:", len(outcome.answer.relation))
    print("    (the restriction keeps only active-domain tuples, so the answer is finite)")


if __name__ == "__main__":
    main()
