#!/usr/bin/env python3
"""Safety over the ordered naturals ``(N, <)``: Fact 2.1, finitization, Theorem 2.5.

This example works over the domain of Section 2.1:

* it evaluates the Fact 2.1 query (finite, but not domain-independent);
* it finitizes a few queries and shows that finitization preserves finite
  queries and tames infinite ones (Theorem 2.2);
* it runs the Theorem 2.5 relative-safety decider, then answers the finite
  queries with the Section 1.1 enumeration algorithm backed by Cooper's
  decision procedure for Presburger arithmetic.

Run with:  python examples/ordered_naturals_safety.py
"""

from repro.domains import NaturalOrderDomain, PresburgerDomain
from repro.engine import FiniteAnswer, QueryEngine
from repro.experiments.corpora import numeric_schema, numeric_state, ordered_query_corpus
from repro.logic import print_formula
from repro.safety import OrderedRelativeSafety, fact_2_1_query, finitize
from repro.safety.domain_independence import answer_over_universe, check_domain_independence


def main() -> None:
    schema = numeric_schema()
    state = numeric_state([2, 5, 9])
    domain = NaturalOrderDomain()
    engine = QueryEngine(domain, schema)
    decider = OrderedRelativeSafety(PresburgerDomain())

    # --- Fact 2.1 -----------------------------------------------------------
    query = fact_2_1_query(schema)
    print("Fact 2.1 query (least element above the whole active domain):")
    print("   ", print_formula(query)[:100], "...")
    answer = answer_over_universe(query, state, domain, universe=range(0, 14))
    print("    answer over S = {2, 5, 9}:", sorted(answer.rows))
    verdict = check_domain_independence(query, state, domain, extra_elements=range(0, 14))
    print("    domain-independence check:", verdict.status.value, "—", verdict.details, "\n")

    # --- Theorem 2.2 / 2.5 ---------------------------------------------------
    print("Relative safety (Theorem 2.5) and enumeration answering (Section 1.1):")
    for name, corpus_query, expected in ordered_query_corpus()[:6]:
        verdict = decider.decide(corpus_query, state)
        line = f"    {name:28s} ground-truth finite={expected!s:5s} decided={verdict.status.value}"
        if verdict.is_finite:
            result = engine.answer_by_enumeration(corpus_query, state, max_rows=50, max_candidates=200)
            if isinstance(result, FiniteAnswer):
                line += f"  -> {len(result.relation)} rows via enumeration"
        print(line)
    print()

    print("Finitization (Theorem 2.2) of the unsafe query 'above-some-member':")
    unsafe = dict((n, q) for n, q, _f in ordered_query_corpus())["above-some-member"]
    finitized = finitize(unsafe)
    print("    phi   :", print_formula(unsafe))
    print("    phi^F :", print_formula(finitized)[:120], "...")
    print("    phi^F is finite in every state; phi is not — the set of all")
    print("    finitizations is the recursive syntax for finite queries of (N, <).")


if __name__ == "__main__":
    main()
