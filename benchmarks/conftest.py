"""Shared helpers for the benchmark suite.

Every experiment benchmark times the experiment's ``run()`` with
pytest-benchmark, prints the rendered result table (so running the benchmark
regenerates the "figures" of EXPERIMENTS.md), and asserts that the measured
behaviour matches the paper's claim.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import ExperimentResult, render_result


def run_experiment_benchmark(benchmark, run, **kwargs) -> ExperimentResult:
    """Benchmark an experiment run, print its table, and check consistency."""
    result = benchmark.pedantic(lambda: run(**kwargs), iterations=1, rounds=1)
    print()
    print(render_result(result))
    assert result.all_rows_consistent, f"{result.experiment_id} disagrees with the paper"
    return result


@pytest.fixture
def experiment_runner():
    """Fixture exposing :func:`run_experiment_benchmark` to benchmark modules."""
    return run_experiment_benchmark
