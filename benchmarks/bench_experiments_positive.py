"""Benchmarks regenerating the positive-case experiments (E1-E7).

Each benchmark times the corresponding experiment harness and prints the
result table recorded in EXPERIMENTS.md.  There are no numeric tables in the
paper to match; the assertion is that the measured behaviour agrees with the
claim (who is finite, what is decidable, which syntax works).
"""

from repro.experiments import (
    exp01_intro_queries,
    exp02_query_answering,
    exp03_fact21,
    exp04_finitization,
    exp05_extension,
    exp06_relative_safety_order,
    exp07_successor,
)

from conftest import run_experiment_benchmark


def test_exp1_intro_queries(benchmark):
    """E1 — Section 1 father/son examples: safe vs unsafe queries."""
    run_experiment_benchmark(benchmark, exp01_intro_queries.run)


def test_exp2_query_answering(benchmark):
    """E2 — Section 1.1 enumeration algorithm over a decidable domain."""
    run_experiment_benchmark(benchmark, exp02_query_answering.run)


def test_exp3_fact_2_1(benchmark):
    """E3 — Fact 2.1: finite but not domain-independent over (N, <)."""
    run_experiment_benchmark(benchmark, exp03_fact21.run)


def test_exp4_finitization(benchmark):
    """E4 — Theorem 2.2: the finitization syntax."""
    run_experiment_benchmark(benchmark, exp04_finitization.run)


def test_exp5_extension(benchmark):
    """E5 — Corollaries 2.3/2.4: syntax beyond decidability; ordered extensions."""
    run_experiment_benchmark(benchmark, exp05_extension.run)


def test_exp6_relative_safety_order(benchmark):
    """E6 — Theorem 2.5: relative safety over decidable extensions of (N, <)."""
    run_experiment_benchmark(benchmark, exp06_relative_safety_order.run)


def test_exp7_successor(benchmark):
    """E7 — Section 2.2: the successor domain (QE, Theorem 2.6, Theorem 2.7)."""
    run_experiment_benchmark(benchmark, exp07_successor.run)
