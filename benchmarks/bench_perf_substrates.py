"""Performance benchmarks for the substrates (not in the paper; support E2/E4/E7/E10).

These characterise how the decision procedures and simulators scale:

* Cooper quantifier elimination vs quantifier depth;
* successor-domain quantifier elimination vs formula size;
* Reach-theory sentence decision;
* trace generation vs number of snapshots;
* query answering by enumeration vs database size;
* relational algebra joins vs relation size;
* the compiled relational-algebra backend vs the tree-walking evaluator on
  guard-certified queries (the CI regression gate watches this one);
* the four execution substrates (tree walker / compiled set executor /
  vectorized NumPy columnar executor / morsel-parallel executor)
  head-to-head on int-domain states, asserting the vectorized path wins at
  the largest size (the parallel arm's time is recorded but its ratio is
  not gated here — see the next item);
* the morsel-parallel substrate against the single-threaded vectorized
  executor on pad-heavy workloads, asserting a ≥2× speedup at the largest
  size (gated ratio ``speedup_parallel``; skipped cleanly on machines with
  fewer than 4 cores, and absent ratios never fail the CI gate);
* the plan optimizer's blowup guard: the "strictly between two members"
  query at growing adom sizes, asserting the optimized plan's peak
  intermediate row count stays O(answer) (no |adom|^2 materialisation), a
  ≥10× speedup over the unoptimized plan at the largest size, and encode
  reuse on repeated vectorized executions against an unchanged state;
* tree-walk quantifier-range narrowing: the same between-query evaluated by
  the tree walker with and without the shared bound analysis narrowing its
  quantifier ranges, asserting ≥5× at |adom|=256 (gated ratio
  ``speedup_treewalk_narrowing``);
* the union-of-intervals guard: the both-sided-witness query must compile
  to an ``IntervalUnionScan`` with O(answer) peak rows and beat the
  unoptimized plan;
* enumeration candidate generation: the compiled-superset generator must
  decision-test candidate counts bounded by the compiled answer, not
  ``max_candidates`` (deterministic gated ratio
  ``speedup_enumeration_candidates``).
"""

import time

import pytest

from repro.domains.equality import EqualityDomain
from repro.domains.presburger import PresburgerDomain
from repro.domains.reach_traces import ReachTracesDomain
from repro.domains.successor import SuccessorDomain, eliminate_successor_quantifiers
from repro.engine.enumeration import answer_by_enumeration
from repro.experiments.corpora import (
    family_state,
    numeric_schema,
    numeric_state,
    ordered_query_corpus,
)
from repro.experiments.exp01_intro_queries import (
    grandfather_query,
    more_than_one_son_query,
)
from repro.logic.builders import atom, conj, exists, forall, var
from repro.logic.parser import parse_formula
from repro.relational.algebra import BaseRelation, NaturalJoin, Rename, evaluate_algebra
from repro.relational.calculus import evaluate_query_active_domain
from repro.relational.compile import compile_query
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.state import DatabaseState
from repro.turing.builders import loop_forever, unary_eraser
from repro.turing.encoding import encode_machine
from repro.turing.traces import trace_of


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_perf_cooper_elimination_vs_depth(benchmark, depth):
    """Cooper's decision procedure on alternating-quantifier Presburger sentences."""
    domain = PresburgerDomain()
    body = "x0 < x1 + 3"
    text = body
    for level in range(depth):
        quantifier = "forall" if level % 2 else "exists"
        text = f"{quantifier} x{level}. ({text})"
    text = f"forall x{depth}. exists x0. ({text.replace('x1', f'x{depth}')})"
    sentence = parse_formula(text)
    result = benchmark(domain.decide, sentence)
    assert result in (True, False)


@pytest.mark.parametrize("width", [2, 4, 8])
def test_perf_successor_elimination_vs_width(benchmark, width):
    """Successor-domain QE on conjunctions of growing width."""
    literals = [parse_formula(f"succ(x) = y{i}") for i in range(width)]
    formula = exists("x", conj(*literals))
    eliminated = benchmark(eliminate_successor_quantifiers, formula)
    assert eliminated is not None


@pytest.mark.parametrize("count", [1, 2])
def test_perf_reach_theory_decision(benchmark, count):
    """Deciding Reach-theory sentences with nested quantifiers."""
    domain = ReachTracesDomain()
    eraser = encode_machine(unary_eraser())
    text = f"forall z. (W(z) -> exists x. P('{eraser}', z, x))"
    expected = True
    if count == 2:
        # the eraser halts immediately on words starting with a blank, so it
        # does NOT have two distinct traces on every input word
        text = (
            f"forall z. (W(z) -> exists x. exists y. "
            f"(P('{eraser}', z, x) & P('{eraser}', z, y) & x != y))"
        )
        expected = False
    sentence = parse_formula(text)
    assert benchmark(domain.decide, sentence) is expected


@pytest.mark.parametrize("snapshots", [10, 100, 500])
def test_perf_trace_generation(benchmark, snapshots):
    """Generating long traces of a diverging machine."""
    looper = encode_machine(loop_forever())
    trace = benchmark(trace_of, looper, "111", snapshots)
    assert trace is not None


@pytest.mark.parametrize("size", [4, 8])
def test_perf_enumeration_answering_vs_state_size(benchmark, size):
    """The Section 1.1 algorithm on growing states of (N, <)."""
    domain = PresburgerDomain()
    state = numeric_state([2 * i + 1 for i in range(size)])
    query = exists("y", conj(atom("S", var("y")), atom("<", var("x"), var("y"))))
    answer = benchmark.pedantic(
        answer_by_enumeration, args=(query, state, domain),
        kwargs={"max_rows": 100, "max_candidates": 300}, iterations=1, rounds=3,
    )
    assert len(answer.relation) == 2 * size - 1


#: family-tree sizes for the substrate comparison; the last one is the
#: "largest state" the ISSUE's ≥5× acceptance criterion is checked at
_GENERATIONS = (3, 4, 5)


@pytest.mark.parametrize("generations", _GENERATIONS)
def test_perf_compiled_algebra_vs_tree_walk(benchmark, generations):
    """Guard-certified queries: compiled set-at-a-time execution must beat
    tuple-at-a-time tree walking by ≥5× on the largest state."""
    domain = EqualityDomain()
    state = family_state(generations=generations, sons_per_father=2)
    queries = [more_than_one_son_query(), grandfather_query()]
    compiled = [compile_query(q, state.schema, domain) for q in queries]

    def run_compiled():
        return [c.execute(state, domain) for c in compiled]

    def run_tree_walk():
        return [
            evaluate_query_active_domain(q, state, interpretation=domain)
            for q in queries
        ]

    fast = benchmark.pedantic(run_compiled, iterations=3, rounds=3)
    # Min of two runs: the speedup ratio feeds the dimensionless CI gate, so
    # the slow side needs some protection against one-off stalls too.
    tree_walk_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        slow = run_tree_walk()
        tree_walk_seconds = min(tree_walk_seconds, time.perf_counter() - started)
    for fast_answer, slow_answer in zip(fast, slow):
        assert fast_answer.rows == slow_answer.rows
    compiled_seconds = benchmark.stats.stats.min
    speedup = tree_walk_seconds / compiled_seconds
    benchmark.extra_info["rows"] = state.total_rows()
    benchmark.extra_info["tree_walk_seconds"] = tree_walk_seconds
    benchmark.extra_info["speedup_vs_tree_walk"] = speedup
    print(
        f"\n[substrates] rows={state.total_rows()} "
        f"tree-walk={tree_walk_seconds:.4f}s compiled={compiled_seconds:.5f}s "
        f"speedup={speedup:.1f}x"
    )
    if generations == _GENERATIONS[-1]:
        assert speedup >= 5.0, (
            f"compiled backend only {speedup:.1f}x faster than tree walking "
            f"at {state.total_rows()} rows; the ISSUE requires >=5x"
        )


#: int-domain state sizes for the four-way substrate comparison; the last
#: one is where the ISSUE's ≥3× vectorized-vs-compiled criterion is checked
_INT_SIZES = (64, 256, 1024)


@pytest.mark.parametrize("size", _INT_SIZES)
def test_perf_vectorized_four_way(benchmark, size):
    """Tree walker vs compiled set executor vs vectorized columnar executor
    vs morsel-parallel executor on ``(N, <)``-style queries over growing
    integer states: the vectorized path must beat the compiled set executor
    by ≥3× at the largest size.  The parallel arm is timed and checked for
    equivalence, but its ratio is deliberately *not* gated here — these
    states are small enough that the outcome depends on the runner's core
    count (the dedicated ``test_perf_parallel_speedup`` below gates it,
    with a cores-aware skip)."""
    from repro.relational.columnar import run_plan_vectorized
    from repro.relational.parallel import run_plan_parallel

    domain = PresburgerDomain()
    state = numeric_state([3 * i + 1 for i in range(size)])
    corpus = {name: query for name, query, _finite in ordered_query_corpus()}
    queries = [corpus["members"], corpus["below-member"]]
    # Pin the *unoptimized* plans: the optimizer collapses these queries to
    # range scans on which both executors tie in microseconds, and this
    # benchmark exists to compare the two executors' kernels on identical
    # pad/filter-shaped plans (the blowup-guard benchmark below covers the
    # optimizer itself).
    compiled = [
        compile_query(q, state.schema, domain, optimize=False) for q in queries
    ]

    def run_vectorized():
        return [
            run_plan_vectorized(c.plan, state, c.universe(state), domain)
            for c in compiled
        ]

    run_vectorized()  # warm numpy's lazy imports before timing
    fast = benchmark.pedantic(run_vectorized, iterations=3, rounds=3)
    # Min of three runs: speedup_vs_set feeds the dimensionless CI gate.
    set_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        set_answers = [c.execute(state, domain) for c in compiled]
        set_seconds = min(set_seconds, time.perf_counter() - started)
    started = time.perf_counter()
    tree_answers = [
        evaluate_query_active_domain(q, state, interpretation=domain)
        for q in queries
    ]
    tree_walk_seconds = time.perf_counter() - started
    parallel_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        parallel_answers = [
            run_plan_parallel(c.plan, state, c.universe(state), domain)
            for c in compiled
        ]
        parallel_seconds = min(parallel_seconds, time.perf_counter() - started)
    for vec_rows, par_rows, set_answer, tree_answer in zip(
        fast, parallel_answers, set_answers, tree_answers
    ):
        assert vec_rows == par_rows == set_answer.rows == tree_answer.rows
    vectorized_seconds = benchmark.stats.stats.min
    speedup_vs_set = set_seconds / vectorized_seconds
    benchmark.extra_info["rows"] = state.total_rows()
    benchmark.extra_info["set_seconds"] = set_seconds
    benchmark.extra_info["tree_walk_seconds"] = tree_walk_seconds
    benchmark.extra_info["parallel_seconds"] = parallel_seconds
    benchmark.extra_info["speedup_vs_set"] = speedup_vs_set
    print(
        f"\n[substrates] size={size} tree-walk={tree_walk_seconds:.4f}s "
        f"set={set_seconds:.4f}s vectorized={vectorized_seconds:.5f}s "
        f"parallel={parallel_seconds:.5f}s "
        f"vectorized-vs-set={speedup_vs_set:.1f}x"
    )
    if size == _INT_SIZES[-1]:
        assert speedup_vs_set >= 3.0, (
            f"vectorized executor only {speedup_vs_set:.1f}x faster than the "
            f"compiled set executor at {size} stored ints; the ISSUE "
            "requires >=3x"
        )


#: int-domain state sizes for the gated parallel-vs-vectorized comparison;
#: the last one (a ~4M-row pad/select/unique workload) is where the ISSUE's
#: ≥2× parallel criterion is checked
_PARALLEL_SIZES = (512, 2048)

#: cores below which the parallel speedup gate is skipped (the ISSUE's
#: criterion is defined "on ≥4 cores"; a 1-2 core runner cannot meet it)
_PARALLEL_MIN_CORES = 4


@pytest.mark.parametrize("size", _PARALLEL_SIZES)
def test_perf_parallel_speedup(benchmark, size):
    """Morsel-parallel vs single-threaded vectorized execution on a pad-heavy
    ``(N, <)`` workload: ≥2× at the largest size on ≥4 cores.

    The ``below-member`` query compiled *unoptimized* pads the free variable
    over the full adom before filtering, so at 2048 stored ints the executor
    crunches a ~4M-row intermediate — enough work per morsel that the pool's
    dispatch overhead vanishes.  On runners with fewer than
    ``_PARALLEL_MIN_CORES`` usable workers the test skips cleanly; the CI
    regression gate (``compare_bench.py``) ignores absent benchmarks and
    ratios, so a baseline regenerated on a small machine stays valid.
    """
    import os

    from repro.relational.columnar import run_plan_vectorized
    from repro.relational.parallel import default_worker_count, run_plan_parallel

    cores = os.cpu_count() or 1
    workers = default_worker_count()
    if min(cores, workers) < _PARALLEL_MIN_CORES:
        pytest.skip(
            f"parallel speedup gate needs >={_PARALLEL_MIN_CORES} cores "
            f"(have {cores}, worker pool {workers})"
        )

    domain = PresburgerDomain()
    state = numeric_state([3 * i + 1 for i in range(size)])
    corpus = {name: query for name, query, _finite in ordered_query_corpus()}
    # Unoptimized on purpose: the optimizer would collapse the pad into a
    # range scan, and this benchmark needs a data-sized kernel workload.
    compiled = compile_query(
        corpus["below-member"], state.schema, domain, optimize=False
    )
    adom = compiled.universe(state)

    def run_parallel():
        return run_plan_parallel(compiled.plan, state, adom, domain)

    run_parallel()  # warm the pool and numpy before timing
    fast = benchmark.pedantic(run_parallel, iterations=3, rounds=3)
    # Min of three runs: speedup_parallel feeds the dimensionless CI gate.
    vectorized_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        slow = run_plan_vectorized(compiled.plan, state, adom, domain)
        vectorized_seconds = min(vectorized_seconds, time.perf_counter() - started)
    assert fast == slow
    parallel_seconds = benchmark.stats.stats.min
    speedup = vectorized_seconds / parallel_seconds
    benchmark.extra_info["rows"] = state.total_rows()
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["vectorized_seconds"] = vectorized_seconds
    benchmark.extra_info["speedup_parallel"] = speedup
    print(
        f"\n[parallel] size={size} workers={workers} "
        f"vectorized={vectorized_seconds:.4f}s parallel={parallel_seconds:.4f}s "
        f"speedup={speedup:.1f}x"
    )
    if size == _PARALLEL_SIZES[-1]:
        assert speedup >= 2.0, (
            f"morsel-parallel executor only {speedup:.1f}x faster than the "
            f"single-threaded vectorized executor at {size} stored ints on "
            f"{workers} workers; the ISSUE requires >=2x on >=4 cores"
        )


#: adom sizes for the between-query blowup guard; the last one is where the
#: ISSUE's ≥10× optimized-vs-unoptimized criterion is checked
_BETWEEN_SIZES = (16, 32, 64)


@pytest.mark.parametrize("size", _BETWEEN_SIZES)
def test_perf_between_query_blowup_guard(benchmark, size):
    """The pad-before-filter blowup guard: "strictly between two members" on
    ``(N, <)`` must scale near-linearly in |adom| under the plan optimizer
    (peak intermediate rows O(answer), not |adom|^2 · |adom|), beat the
    unoptimized plan by ≥10× at the largest size, and skip re-encoding on
    repeated vectorized executions of an unchanged state."""
    from repro.domains.nat_order import NaturalOrderDomain
    from repro.relational.columnar import EncodeCache, run_plan_vectorized
    from repro.relational.exec import ExecutionStats, run_plan

    domain = NaturalOrderDomain()
    state = numeric_state([3 * i + 1 for i in range(size)])
    corpus = {name: query for name, query, _finite in ordered_query_corpus()}
    between = corpus["strictly-between-members"]
    optimized = compile_query(between, state.schema, domain)
    unoptimized = compile_query(between, state.schema, domain, optimize=False)
    adom = optimized.universe(state)

    def run_optimized():
        return run_plan(optimized.plan, state, adom, domain)

    fast = benchmark.pedantic(run_optimized, iterations=3, rounds=3)
    # Min of three runs: the recorded speedup ratio feeds the dimensionless
    # CI gate, so both sides need the same protection against one-off stalls.
    unoptimized_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        slow = run_plan(unoptimized.plan, state, adom, domain)
        unoptimized_seconds = min(
            unoptimized_seconds, time.perf_counter() - started
        )
        assert fast == slow

    # Deterministic near-linearity: the optimized plan's largest intermediate
    # stays O(answer + |adom|) while the unoptimized one materialises the
    # cross product of the two scans and its adom pad.
    optimized_stats = ExecutionStats()
    run_plan(optimized.plan, state, adom, domain, optimized_stats)
    unoptimized_stats = ExecutionStats()
    run_plan(unoptimized.plan, state, adom, domain, unoptimized_stats)
    assert optimized_stats.peak_rows <= 2 * (len(adom) + len(fast))
    assert unoptimized_stats.peak_rows >= size * size

    # Encode amortisation: a second vectorized run of the unchanged state
    # must hit the per-state cache instead of re-encoding the relations.
    cache = EncodeCache(maxsize=4)
    first = run_plan_vectorized(optimized.plan, state, adom, domain, cache=cache)
    second = run_plan_vectorized(optimized.plan, state, adom, domain, cache=cache)
    assert first == second == fast
    assert cache.info().misses == 1 and cache.info().hits >= 1

    optimized_seconds = benchmark.stats.stats.min
    speedup = unoptimized_seconds / optimized_seconds
    benchmark.extra_info["adom"] = len(adom)
    benchmark.extra_info["unoptimized_seconds"] = unoptimized_seconds
    benchmark.extra_info["peak_rows"] = optimized_stats.peak_rows
    benchmark.extra_info["unoptimized_peak_rows"] = unoptimized_stats.peak_rows
    benchmark.extra_info["speedup_vs_unoptimized"] = speedup
    print(
        f"\n[blowup-guard] adom={len(adom)} "
        f"unoptimized={unoptimized_seconds:.4f}s "
        f"optimized={optimized_seconds:.6f}s speedup={speedup:.0f}x "
        f"peak-rows {unoptimized_stats.peak_rows}->{optimized_stats.peak_rows}"
    )
    if size == _BETWEEN_SIZES[-1]:
        assert speedup >= 10.0, (
            f"optimized between-query only {speedup:.1f}x faster than the "
            f"unoptimized plan at |adom|={len(adom)}; the ISSUE requires >=10x"
        )


#: adom sizes for the tree-walk narrowing guard; the last one is where the
#: ISSUE's ≥5× narrowed-vs-full criterion is checked
_NARROW_SIZES = (64, 128, 256)


@pytest.mark.parametrize("size", _NARROW_SIZES)
def test_perf_treewalk_narrowing(benchmark, size):
    """Quantifier-range narrowing in the tree walker: "strictly between two
    members" on ``(N, <)`` must beat the un-narrowed full-adom walker by
    ≥5× at |adom|=256 (the narrowed walker bisects each quantifier's range
    out of the sorted adom instead of iterating all of it)."""
    from repro.domains.nat_order import NaturalOrderDomain
    from repro.relational.bounds import NarrowingStats

    domain = NaturalOrderDomain()
    state = numeric_state([3 * i + 1 for i in range(size)])
    corpus = {name: query for name, query, _finite in ordered_query_corpus()}
    between = corpus["strictly-between-members"]

    def run_narrowed():
        return evaluate_query_active_domain(between, state, interpretation=domain)

    fast = benchmark.pedantic(run_narrowed, iterations=1, rounds=3)
    # Min of two runs: the ratio feeds the dimensionless CI gate.
    full_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        slow = evaluate_query_active_domain(
            between, state, interpretation=domain, narrow=False
        )
        full_seconds = min(full_seconds, time.perf_counter() - started)
    assert fast.rows == slow.rows
    stats = NarrowingStats()
    evaluate_query_active_domain(
        between, state, interpretation=domain, stats=stats
    )
    assert stats.enabled and stats.skipped > 0
    narrowed_seconds = benchmark.stats.stats.min
    speedup = full_seconds / narrowed_seconds
    benchmark.extra_info["adom"] = size
    benchmark.extra_info["full_walk_seconds"] = full_seconds
    benchmark.extra_info["candidates_kept"] = stats.candidates
    benchmark.extra_info["candidates_skipped"] = stats.skipped
    benchmark.extra_info["speedup_treewalk_narrowing"] = speedup
    print(
        f"\n[narrowing] adom={size} full={full_seconds:.4f}s "
        f"narrowed={narrowed_seconds:.4f}s speedup={speedup:.1f}x "
        f"kept/skipped={stats.candidates}/{stats.skipped}"
    )
    if size == _NARROW_SIZES[-1]:
        assert speedup >= 5.0, (
            f"narrowed tree walker only {speedup:.1f}x faster than the "
            f"full-adom walker at |adom|={size}; the ISSUE requires >=5x"
        )


@pytest.mark.parametrize("spans", [32, 64])
def test_perf_interval_union_scan_guard(benchmark, spans):
    """The union-of-intervals reduction: the both-sided-witness query
    compiles to an ``IntervalUnionScan`` (no ``IntervalJoin`` fallback) whose
    peak intermediate rows stay O(answer)."""
    from repro.domains.nat_order import NaturalOrderDomain
    from repro.experiments.corpora import span_query_corpus, span_state
    from repro.relational.exec import (
        ExecutionStats,
        IntervalJoin,
        IntervalUnionScan,
        run_plan,
        walk_plan,
    )

    domain = NaturalOrderDomain()
    state = span_state([], [(3 * i, 3 * i + 8) for i in range(spans)])
    covered = span_query_corpus()[0][1]
    optimized = compile_query(covered, state.schema, domain)
    kinds = [type(node) for node in walk_plan(optimized.plan)]
    assert IntervalUnionScan in kinds and IntervalJoin not in kinds
    unoptimized = compile_query(covered, state.schema, domain, optimize=False)
    adom = optimized.universe(state)

    def run_optimized():
        return run_plan(optimized.plan, state, adom, domain)

    fast = benchmark.pedantic(run_optimized, iterations=3, rounds=3)
    unoptimized_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        slow = run_plan(unoptimized.plan, state, adom, domain)
        unoptimized_seconds = min(
            unoptimized_seconds, time.perf_counter() - started
        )
        assert fast == slow
    optimized_stats = ExecutionStats()
    run_plan(optimized.plan, state, adom, domain, optimized_stats)
    naive_stats = ExecutionStats()
    run_plan(unoptimized.plan, state, adom, domain, naive_stats)
    assert optimized_stats.peak_rows <= len(fast) + spans
    assert naive_stats.peak_rows >= spans * len(adom) / 2
    speedup = unoptimized_seconds / benchmark.stats.stats.min
    benchmark.extra_info["adom"] = len(adom)
    benchmark.extra_info["peak_rows"] = optimized_stats.peak_rows
    benchmark.extra_info["unoptimized_peak_rows"] = naive_stats.peak_rows
    benchmark.extra_info["speedup_union_vs_unoptimized"] = speedup
    print(
        f"\n[union-scan] spans={spans} unoptimized={unoptimized_seconds:.4f}s "
        f"optimized={benchmark.stats.stats.min:.5f}s speedup={speedup:.0f}x "
        f"peak-rows {naive_stats.peak_rows}->{optimized_stats.peak_rows}"
    )


@pytest.mark.parametrize("size", [8, 16])
def test_perf_enumeration_compiled_candidates(benchmark, size):
    """Enumeration-path compilation: the compiled-superset candidate
    generator must decision-test a candidate count bounded by the compiled
    answer, where the blind dovetail re-tests every carrier prefix per
    round.  The recorded ratio is a deterministic candidate-count ratio, so
    the CI gate on it is noise-free."""
    from repro.engine.enumeration import CandidateStats

    domain = PresburgerDomain()
    state = numeric_state([3 * i + 1 for i in range(size)])
    members = atom("S", var("x"))

    def run_compiled_candidates():
        stats = CandidateStats()
        answer = answer_by_enumeration(
            members, state, domain, max_rows=200, max_candidates=10_000,
            stats=stats,
        )
        return answer, stats

    (answer, stats) = benchmark.pedantic(
        run_compiled_candidates, iterations=1, rounds=3
    )
    assert len(answer.relation) == size
    assert stats.generator == "compiled+bounded"
    assert stats.compiled_rows == size
    assert stats.examined <= size + 1  # bounded by the compiled superset
    legacy = CandidateStats()
    same = answer_by_enumeration(
        members, state, domain, max_rows=200, max_candidates=10_000,
        candidate_source="dovetail", stats=legacy,
    )
    assert same.relation.rows == answer.relation.rows
    ratio = legacy.examined / max(1, stats.examined)
    benchmark.extra_info["candidates_compiled"] = stats.examined
    benchmark.extra_info["candidates_dovetail"] = legacy.examined
    benchmark.extra_info["speedup_enumeration_candidates"] = ratio
    print(
        f"\n[enumeration] size={size} compiled-candidates={stats.examined} "
        f"dovetail-candidates={legacy.examined} reduction={ratio:.1f}x"
    )
    assert ratio >= 2.0, (
        f"compiled candidate generation only cut decision tests by "
        f"{ratio:.1f}x at {size} stored values; expected >=2x"
    )


@pytest.mark.parametrize("rows", [100, 400])
def test_perf_natural_join(benchmark, rows):
    """Hash natural join on synthetic father/son chains."""
    schema = DatabaseSchema((RelationSchema("F", 2, ("father", "son")),))
    state = DatabaseState(schema, {"F": [(i, i + 1) for i in range(rows)]})
    grand = NaturalJoin(
        Rename(BaseRelation("F"), (("son", "middle"),)),
        Rename(BaseRelation("F"), (("father", "middle"), ("son", "grandson"))),
    )
    result = benchmark(evaluate_algebra, grand, state)
    assert len(result.relation) == rows - 1
