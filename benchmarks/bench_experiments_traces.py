"""Benchmarks regenerating the trace-domain experiments (E8-E12).

These cover the paper's main construction: the domain of traces, Lemma A.2,
the quantifier elimination of Theorem A.3 (decidability, Corollary A.4), and
the two negative results (Theorem 3.1: no effective syntax; Theorem 3.3:
relative safety undecidable).
"""

from repro.experiments import (
    exp08_trace_domain,
    exp09_lemma_a2,
    exp10_trace_qe,
    exp11_no_effective_syntax,
    exp12_relative_safety_traces,
)

from conftest import run_experiment_benchmark


def test_exp8_trace_domain(benchmark):
    """E8 — Section 3: sorts, traces, the predicate P, trace counts."""
    run_experiment_benchmark(benchmark, exp08_trace_domain.run)


def test_exp9_lemma_a2(benchmark):
    """E9 — Lemma A.2: criterion vs explicit witness machines."""
    run_experiment_benchmark(benchmark, exp09_lemma_a2.run)


def test_exp10_trace_quantifier_elimination(benchmark):
    """E10 — Theorem A.3 / Corollary A.4: QE and decidability of the theory of traces."""
    run_experiment_benchmark(benchmark, exp10_trace_qe.run)


def test_exp11_no_effective_syntax(benchmark):
    """E11 — Theorem 3.1 / Corollary 3.2: no effective syntax over T."""
    run_experiment_benchmark(benchmark, exp11_no_effective_syntax.run)


def test_exp12_relative_safety_traces(benchmark):
    """E12 — Theorem 3.3: relative safety over T is the halting problem."""
    run_experiment_benchmark(benchmark, exp12_relative_safety_traces.run)
