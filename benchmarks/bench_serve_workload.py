"""Serving-workload benchmarks: zipfian query mix, warm restarts, tail latency.

Not in the paper — these gate the :mod:`repro.serve` subsystem the way the
blowup guards gate the optimizer:

* **zipfian plan-cache hit rate** — a realistic serving mix (few hot
  queries, a long tail) over several sessions sharing one plan cache must
  keep the hit rate ≥ 0.9; p50/p99 request latency is recorded alongside;
* **warm restart** — with an on-disk :class:`~repro.serve.plan_store.PlanStore`
  populated by a previous "process", a fresh manager must answer a
  compile-heavy mix ≥ 3× faster than the cold manager that had to compile
  everything (gated portably via the dimensionless ``speedup_warm_restart``
  ratio, like the other ``speedup*`` extra_info keys).
"""

from __future__ import annotations

import gc
import random
import time

import pytest

from repro.experiments.corpora import (
    numeric_schema,
    numeric_state,
    ordered_query_corpus,
    span_query_corpus,
    span_schema,
    span_state,
)
from repro.logic.parser import parse_formula
from repro.relational.columnar import encode_cache
from repro.serve.policy import ServerPolicy
from repro.serve.sessions import SessionManager

# ---------------------------------------------------------------------------
# The zipfian serving mix
# ---------------------------------------------------------------------------


def query_pool():
    """~24 distinct finite queries over (N, <): corpora + parameterized tail.

    The parameterized variants differ only in an embedded constant, so each
    is a *distinct* formula with its own compiled plan — the long tail a
    plan cache has to absorb.
    """
    pool = [
        (numeric_schema(), query)
        for _, query, finite in ordered_query_corpus()
        if finite
    ]
    pool.extend(
        (span_schema(), query)
        for _, query, finite in span_query_corpus()
        if finite
    )
    for constant in range(5, 20):
        pool.append((
            numeric_schema(),
            parse_formula(f"S(x) & x < {constant}"),
        ))
    return pool


def zipf_indices(rng: random.Random, n: int, count: int, s: float = 1.1):
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    return rng.choices(range(n), weights=weights, k=count)


REQUESTS = 480
SESSIONS = 8


@pytest.mark.benchmark(group="serve-workload")
def test_serve_zipfian_plan_cache_hit_rate(benchmark):
    """A zipfian mix over 8 sessions keeps the shared-plan-cache hit rate ≥ 0.9."""
    pool = query_pool()
    numeric = numeric_state([3, 5, 9, 14, 21])
    span = span_state([2, 6, 11, 17], [(1, 5), (8, 12), (15, 19)])
    states = {numeric_schema(): numeric, span_schema(): span}
    rng = random.Random(20260808)
    picks = zipf_indices(rng, len(pool), REQUESTS)

    def run_workload():
        encode_cache().clear()
        # 8 client slots × one session per schema flavour = 16 live sessions
        manager = SessionManager(ServerPolicy(max_sessions=2 * SESSIONS))
        latencies = []
        try:
            sessions = [
                {
                    schema: manager.connect("nat<", schema).session_id
                    for schema in states
                }
                for _ in range(SESSIONS)
            ]
            for request_number, pick in enumerate(picks):
                schema, query = pool[pick]
                session_id = sessions[request_number % SESSIONS][schema]
                started = time.perf_counter()
                result = manager.run_query(
                    session_id, query, states[schema], strategy="vectorized"
                )
                latencies.append(time.perf_counter() - started)
                assert result.answer.is_finite
            return manager.plan_cache.info(), latencies
        finally:
            manager.shutdown()

    info, latencies = benchmark.pedantic(run_workload, iterations=1, rounds=3)
    hit_rate = info.hit_rate
    ordered = sorted(latencies)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]

    benchmark.extra_info["requests"] = REQUESTS
    benchmark.extra_info["distinct_queries"] = len(query_pool())
    benchmark.extra_info["plan_cache_hit_rate"] = round(hit_rate, 4)
    benchmark.extra_info["p50_ms"] = round(p50 * 1000, 3)
    benchmark.extra_info["p99_ms"] = round(p99 * 1000, 3)

    # the serving claim: repeat queries are answered without recompilation
    assert hit_rate >= 0.9, f"plan-cache hit rate {hit_rate:.3f} < 0.9"
    assert info.misses <= len(query_pool())


# ---------------------------------------------------------------------------
# Cold vs warm start through the on-disk plan store
# ---------------------------------------------------------------------------


def compile_heavy_pool():
    """80 distinct wide-conjunction queries: compile cost dominates execution.

    Each query carries a 16-term bound conjunction under two quantifiers —
    lots of work for the compiler and optimizer — but runs against a
    one-element relation, so executing the finished plan is nearly free.
    That isolates what a warm restart is supposed to save: compilation.
    """
    queries = []
    for constant in range(10, 10 + 80 * 10, 10):
        bounds = " & ".join(f"x < {constant + i}" for i in range(16))
        queries.append(parse_formula(
            f"exists y. exists z. (S(y) & S(z) & y < x & x < z & {bounds})"
        ))
    return queries


def _run_compile_heavy_mix(policy: ServerPolicy) -> float:
    """Seconds to answer every pool query once on a fresh manager."""
    pool = compile_heavy_pool()
    state = numeric_state([2])
    encode_cache().clear()
    manager = SessionManager(policy)
    try:
        session_id = manager.connect("nat<", numeric_schema()).session_id
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            for query in pool:
                manager.run_query(session_id, query, state, strategy="compiled")
            return time.perf_counter() - started
        finally:
            gc.enable()
    finally:
        manager.shutdown()


@pytest.mark.benchmark(group="serve-workload")
def test_serve_warm_restart_speedup(benchmark, tmp_path):
    """A populated PlanStore makes a fresh process ≥ 3× faster on the
    compile-heavy mix (every query distinct, so cold start compiles all)."""
    cold_dir = tmp_path / "cold-store"
    warm_dir = tmp_path / "warm-store"

    # prime process-global state (imports, bytecode, memoised analyses) so
    # the cold measurement isolates compilation, not interpreter warm-up
    _run_compile_heavy_mix(ServerPolicy(plan_store_path=str(cold_dir / "prime")))

    # cold: empty store → every query compiles (and writes through)
    cold_seconds = min(
        _run_compile_heavy_mix(
            ServerPolicy(plan_store_path=str(cold_dir / str(attempt)))
        )
        for attempt in range(2)
    )

    # populate the store once, then benchmark "restarts" against it: each
    # round is a fresh manager (fresh memory tier) over the same directory
    warm_policy = ServerPolicy(plan_store_path=str(warm_dir))
    _run_compile_heavy_mix(warm_policy)

    warm_runs: list = []

    def timed_warm_restart() -> float:
        seconds = _run_compile_heavy_mix(warm_policy)
        warm_runs.append(seconds)
        return seconds

    benchmark.pedantic(timed_warm_restart, iterations=1, rounds=3)
    warm_seconds = min(warm_runs)

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    benchmark.extra_info["cold_seconds"] = cold_seconds
    benchmark.extra_info["warm_seconds"] = warm_seconds
    benchmark.extra_info["distinct_queries"] = len(compile_heavy_pool())
    benchmark.extra_info["speedup_warm_restart"] = round(speedup, 2)

    assert speedup >= 3.0, (
        f"warm restart only {speedup:.1f}× faster than cold "
        f"({warm_seconds * 1000:.1f} ms vs {cold_seconds * 1000:.1f} ms)"
    )


# ---------------------------------------------------------------------------
# Deadline-checkpoint overhead
# ---------------------------------------------------------------------------


def _deadline_workload():
    """A join-heavy fixture where per-operator checkpoints would show up."""
    from repro.api import Session
    from repro.relational.schema import DatabaseSchema, RelationSchema

    schema = DatabaseSchema((RelationSchema("F", 2),))
    session = Session("nat<", schema)
    rows = 12_000
    state = session.state(F=[(i, (i * 7) % rows) for i in range(rows)])
    query = "exists u. exists v. (F(x, u) & F(u, v) & F(v, z))"
    return session, state, query


@pytest.mark.benchmark(group="serve-workload")
def test_deadline_checkpoint_overhead(benchmark):
    """An armed (but generous) deadline costs < 5% over no deadline at all.

    Without a time limit or cancel token the plans skip instrumentation
    entirely (``_start_deadline()`` returns ``None``); with a generous limit
    every operator ticks its strided checkpoint.  The serving layer arms a
    deadline on *every* request, so this overhead is always on the hot path.
    """
    from repro import Budget

    session, state, query = _deadline_workload()

    def run_once(budget):
        started = time.perf_counter()
        result = session.run(query, state, strategy="compiled", budget=budget)
        assert result.answer.is_finite
        return time.perf_counter() - started

    run_once(Budget())  # prime caches so neither side pays warm-up

    # Adjacent (unarmed, armed) pairs, then the median of their ratios:
    # clock-speed drift over the measurement window cancels within a pair,
    # and the median discards the odd GC/scheduler outlier that a min-of-N
    # comparison across sides would let decide the gate.
    def measure_batch(pairs=7):
        ratios, best = [], (float("inf"), float("inf"))
        for _ in range(pairs):
            unarmed_s = run_once(Budget())
            armed_s = run_once(Budget(time_limit=3600.0))
            best = (min(best[0], unarmed_s), min(best[1], armed_s))
            ratios.append(armed_s / unarmed_s)
        return sorted(ratios)[len(ratios) // 2], best

    # A noisy neighbour can inflate one batch; genuine checkpoint overhead
    # inflates every batch. Gate on the best median of (up to) two.
    overhead, (unarmed, armed) = measure_batch()
    if overhead > 1.05:
        retry, (retry_unarmed, retry_armed) = measure_batch()
        if retry < overhead:
            overhead = retry
            unarmed, armed = retry_unarmed, retry_armed

    benchmark.pedantic(
        lambda: run_once(Budget(time_limit=3600.0)), iterations=1, rounds=3
    )

    benchmark.extra_info["unarmed_ms"] = round(unarmed * 1000, 3)
    benchmark.extra_info["armed_ms"] = round(armed * 1000, 3)
    # dimensionless, gated by compare_bench like the other speedup* ratios
    benchmark.extra_info["speedup_deadline_unarmed"] = round(overhead, 4)

    assert overhead <= 1.05, (
        f"deadline checkpoints cost {100 * (overhead - 1):.1f}% "
        f"(best batch median of interleaved armed/unarmed pairs)"
    )
