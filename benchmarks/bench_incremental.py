"""Incremental-evaluation benchmark: repeat queries after a small delta.

The write-path scenario the incremental substrate exists for: a session has
already answered a query, the state then changes by ``k`` rows through
:meth:`DatabaseState.apply`, and the same query is asked again.  With an
:class:`~repro.engine.answer_cache.AnswerCache` the repeat answer is patched
by the ΔQ rules of :mod:`repro.relational.delta` at O(Δ · answer) cost; the
baseline re-executes the compiled plan from scratch against the mutated
state.

One benchmark, three family-tree sizes (the rest of the suite lives in
``bench_perf_substrates.py``):

* repeat-query-after-k-row-delta: the paper's grandfather and
  more-than-one-son queries over growing family trees, an 8-row insert-only
  delta over *existing* person ids (so the active domain is unchanged and
  every node patches instead of recomputing), asserting the delta-maintained
  repeat answer beats full compiled re-execution by ≥5× at the largest size
  (gated ratio ``speedup_delta_repeat``) and that the answer cache really
  reported ``delta-maintained`` — a silent fall back to full recompute would
  otherwise time two identical code paths.

Each timed round gets a fresh answer cache warmed on the *base* state in
untimed setup: after one maintained execution the cache is stamped with the
mutated fingerprint and repeat calls would be O(answer) cache *hits*, which
is the wrong (too fast) path to gate.
"""

import time

import pytest

from repro.domains.equality import EqualityDomain
from repro.engine.answer_cache import AnswerCache
from repro.engine.plans import IncrementalAlgebraPlan
from repro.experiments.corpora import family_state
from repro.experiments.exp01_intro_queries import (
    grandfather_query,
    more_than_one_son_query,
)
from repro.relational.compile import compile_query
from repro.relational.state import Delta

#: family-tree sizes (62 / 254 / 1022 rows); the last one is where the
#: ISSUE's ≥5× delta-repeat acceptance criterion is checked
_GENERATIONS = (5, 7, 9)

#: rows in the insert-only delta — "k" in repeat-query-after-k-row-delta
_DELTA_ROWS = 8


def _insert_only_delta(state, k=_DELTA_ROWS):
    """``k`` new father→son rows pairing up *existing* leaf ids.

    Leaves only ever appear as sons, so every row is genuinely new (it
    changes both query answers), yet no new element enters the active
    domain — the ΔQ rules can patch every operator instead of recomputing
    the adom-dependent ones.
    """
    fathers = {f for f, _s in state.relations["F"].rows}
    leaves = sorted(
        {s for _f, s in state.relations["F"].rows if s not in fathers}
    )
    pairs = [
        (leaves[2 * i], leaves[2 * i + 1]) for i in range(k)
    ]
    return Delta.insert("F", *pairs)


@pytest.mark.parametrize("generations", _GENERATIONS)
def test_perf_incremental_delta_repeat(benchmark, generations):
    """Delta-maintained repeat answers vs full compiled re-execution after
    an 8-row insert: the incremental path must win by ≥5× at the largest
    size."""
    domain = EqualityDomain()
    state = family_state(generations=generations, sons_per_father=2)
    delta = _insert_only_delta(state)
    mutated = state.apply(delta)
    queries = [more_than_one_son_query(), grandfather_query()]
    compiled = [compile_query(q, state.schema, domain) for q in queries]

    def fresh_warm_plan():
        # A fresh cache materialised on the *base* state, so the timed call
        # below exercises the ΔQ maintenance path (not a fingerprint hit).
        plan = IncrementalAlgebraPlan(domain=domain, answer_cache=AnswerCache())
        for query in queries:
            plan.execute(query, state)
        return (plan,), {}

    def run_repeat(plan):
        return [plan.execute(query, mutated) for query in queries]

    fast = benchmark.pedantic(
        run_repeat, setup=fresh_warm_plan, iterations=1, rounds=5
    )
    plan = IncrementalAlgebraPlan(domain=domain, answer_cache=AnswerCache())
    for query in queries:
        plan.execute(query, state)
        plan.execute(query, mutated)
        assert "delta-maintained" in (plan.last_decision or ""), plan.last_decision
    # Min of three runs: the speedup ratio feeds the dimensionless CI gate,
    # so the slow side needs some protection against one-off stalls too.
    full_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        full = [c.execute(mutated, domain) for c in compiled]
        full_seconds = min(full_seconds, time.perf_counter() - started)
    for fast_answer, full_answer in zip(fast, full):
        assert fast_answer.relation.rows == full_answer.rows
    assert fast[1].relation.rows - compiled[1].execute(state, domain).rows
    incremental_seconds = benchmark.stats.stats.min
    speedup = full_seconds / incremental_seconds
    benchmark.extra_info["rows"] = state.total_rows()
    benchmark.extra_info["delta_rows"] = delta.row_count()
    benchmark.extra_info["full_seconds"] = full_seconds
    benchmark.extra_info["speedup_delta_repeat"] = speedup
    print(
        f"\n[incremental] rows={state.total_rows()} delta={delta.row_count()} "
        f"full={full_seconds:.5f}s maintained={incremental_seconds:.5f}s "
        f"speedup={speedup:.1f}x"
    )
    if generations == _GENERATIONS[-1]:
        assert speedup >= 5.0, (
            f"delta-maintained repeat answer only {speedup:.1f}x faster than "
            f"full re-execution at {state.total_rows()} rows; the ISSUE "
            "requires >=5x"
        )
