"""Benchmark smoke for the domain-pack conformance harness.

Two purposes:

* wall-clock guard: the full conformance suite over every registered pack
  must stay fast enough to run on every CI push (the ``conformance`` job
  runs it twice — once via pytest, once via ``python -m repro.conformance``);
* per-pack decision-procedure timing: the four new packs' deciders (dense
  linear order via Ferrante–Rackoff test points, integer differences via
  Bellman–Ford, cyclic successor via exhaustive carrier checking, shortlex
  strings via the rank translation to Cooper) each timed on their declared
  ground-truth sentences.

Bench names are new, so the CI baseline gate records them without failing
(unmatched benchmarks never fail the comparison).
"""

import pytest

from repro.conformance import run_conformance, run_pack_conformance
from repro.domains import available_packs, get_pack

NEW_PACKS = (
    "rationals_with_order",
    "integer_differences",
    "cyclic_successor",
    "shortlex_strings",
)


def test_bench_conformance_all_packs(benchmark):
    """The whole conformance suite, one seed, every registered pack."""
    report = benchmark.pedantic(
        lambda: run_conformance(seeds=("bench",)), iterations=1, rounds=1
    )
    assert report.ok, report.describe()
    assert len(report.reports) == len(available_packs())


@pytest.mark.parametrize("pack_name", NEW_PACKS)
def test_bench_new_pack_conformance(benchmark, pack_name):
    """Per-pack conformance timing for the four pack-seeded domains."""
    report = benchmark.pedantic(
        lambda: run_pack_conformance(pack_name, seeds=("bench",)),
        iterations=1,
        rounds=1,
    )
    assert report.ok, report.describe()


@pytest.mark.parametrize("pack_name", NEW_PACKS)
def test_bench_new_pack_decision_procedures(benchmark, pack_name):
    """Each new decider on its declared ground-truth sentence corpus."""
    pack = get_pack(pack_name)
    sentences = pack.sentences()
    assert sentences

    def decide_all():
        domain = pack.factory()  # fresh: no memoisation across rounds
        return [domain.decide(ps.sentence) for ps in sentences]

    got = benchmark(decide_all)
    assert got == [ps.truth for ps in sentences]
