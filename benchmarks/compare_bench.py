#!/usr/bin/env python3
"""Compare two pytest-benchmark JSON files and fail on regressions.

Usage::

    python benchmarks/compare_bench.py BENCH_baseline.json BENCH_pr.json \
        [--tolerance 1.25] [--ratio-tolerance 1.5]

Two gates:

* **medians** — a benchmark regresses when its median run time exceeds
  ``tolerance`` times the baseline median (default 1.25, i.e. >25 % slower,
  overridable via the ``BENCH_TOLERANCE`` environment variable).  Medians are
  machine-dependent, so this gate is noisy across runner generations.
* **speedup ratios** — benchmarks that record dimensionless speedups in
  ``extra_info`` (keys starting with ``speedup``, e.g. compiled-vs-treewalk,
  vectorized-vs-set, optimized-vs-unoptimized) are additionally gated on the
  *ratio*: it regresses when it falls below the baseline ratio divided by
  ``ratio_tolerance`` (default 1.5, env ``BENCH_RATIO_TOLERANCE``).  Both
  sides of a ratio move with the machine, so this gate is portable across
  hardware — the point of the ROADMAP's baseline-portability item.

Benchmarks are matched by their fully-qualified test name.  Benchmarks (or
ratio keys) present in only one file are reported but never fail the gate,
so adding or retiring benchmarks does not break CI.

The exit status is 0 when nothing regressed and 1 otherwise; the summary
tables are always printed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Tuple


def load_benchmarks(path: str) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Map benchmark names to median seconds and ``speedup*`` extra ratios.

    Ratio keys are ``"<fullname>::<extra_info key>"``.
    """
    with open(path) as handle:
        payload = json.load(handle)
    medians: Dict[str, float] = {}
    ratios: Dict[str, float] = {}
    for entry in payload.get("benchmarks", []):
        name = entry["fullname"]
        medians[name] = float(entry["stats"]["median"])
        for key, value in (entry.get("extra_info") or {}).items():
            if key.startswith("speedup") and isinstance(value, (int, float)):
                ratios[f"{name}::{key}"] = float(value)
    return medians, ratios


def compare(
    baseline: Dict[str, float], current: Dict[str, float], tolerance: float
) -> Tuple[list, list, list]:
    """Split benchmarks into (regressions, ok, unmatched) triples.

    A benchmark regresses when ``current / baseline > tolerance`` — for
    medians that means *slower*, and the same shape gates ratios by passing
    the inverted values (see :func:`compare_ratios`).
    """
    regressions = []
    ok = []
    unmatched = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline or name not in current:
            side = "baseline" if name in baseline else "current"
            unmatched.append((name, side))
            continue
        before, after = baseline[name], current[name]
        ratio = after / before if before > 0 else float("inf")
        record = (name, before, after, ratio)
        if ratio > tolerance:
            regressions.append(record)
        else:
            ok.append(record)
    return regressions, ok, unmatched


def compare_ratios(
    baseline: Dict[str, float], current: Dict[str, float], tolerance: float
) -> Tuple[list, list, list]:
    """Like :func:`compare`, but for speedup ratios (bigger is better).

    A ratio regresses when ``baseline / current > tolerance``, i.e. the
    current speedup fell below ``baseline / tolerance``.
    """
    inverted_baseline = {k: 1.0 / v for k, v in baseline.items() if v > 0}
    inverted_current = {k: 1.0 / v for k, v in current.items() if v > 0}
    regressions, ok, unmatched = compare(
        inverted_baseline, inverted_current, tolerance
    )
    def restore(records):
        return [
            (name, 1.0 / before, 1.0 / after, ratio)
            for name, before, after, ratio in records
        ]
    return restore(regressions), restore(ok), unmatched


def _print_table(title: str, ok, regressions, unmatched, tolerance: float,
                 unit: str) -> None:
    header = f"{title:<100} {'baseline':>12} {'current':>12} {'ratio':>8}"
    print(header)
    print("-" * len(header))
    for name, before, after, ratio in ok + regressions:
        flag = "  REGRESSION" if ratio > tolerance else ""
        print(f"{name:<100} {before:>12.6f} {after:>12.6f} {ratio:>8.2f}{flag}")
    for name, side in unmatched:
        print(f"{name:<100} (only in {side}; ignored)")
    print(
        f"{len(ok)} ok, {len(regressions)} regression(s), "
        f"{len(unmatched)} unmatched, tolerance {tolerance:.2f}x ({unit})\n"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument("current", help="freshly measured BENCH_pr.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_TOLERANCE", "1.25")),
        help="fail when current/baseline median exceeds this ratio "
        "(default 1.25 = 25%% slower; env BENCH_TOLERANCE overrides)",
    )
    parser.add_argument(
        "--ratio-tolerance",
        type=float,
        default=float(os.environ.get("BENCH_RATIO_TOLERANCE", "1.5")),
        help="fail when a recorded speedup ratio falls below baseline/this "
        "(default 1.5; env BENCH_RATIO_TOLERANCE overrides); dimensionless, "
        "so it is stable across runner hardware",
    )
    args = parser.parse_args(argv)

    base_medians, base_ratios = load_benchmarks(args.baseline)
    cur_medians, cur_ratios = load_benchmarks(args.current)

    regressions, ok, unmatched = compare(base_medians, cur_medians, args.tolerance)
    _print_table("benchmark (median seconds)", ok, regressions, unmatched,
                 args.tolerance, "median")

    ratio_regressions, ratio_ok, ratio_unmatched = compare_ratios(
        base_ratios, cur_ratios, args.ratio_tolerance
    )
    _print_table("benchmark (speedup ratio)", ratio_ok, ratio_regressions,
                 ratio_unmatched, args.ratio_tolerance, "speedup")

    failed = bool(regressions or ratio_regressions)
    if failed:
        print("FAIL: benchmark regression(s) against the committed baseline")
        return 1
    print("OK: no benchmark regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
