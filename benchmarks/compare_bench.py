#!/usr/bin/env python3
"""Compare two pytest-benchmark JSON files and fail on regressions.

Usage::

    python benchmarks/compare_bench.py BENCH_baseline.json BENCH_pr.json \
        [--tolerance 1.25]

Benchmarks are matched by their fully-qualified test name.  A benchmark
regresses when its median run time exceeds ``tolerance`` times the baseline
median (default 1.25, i.e. >25 % slower, overridable via the
``BENCH_TOLERANCE`` environment variable).  Benchmarks present in only one
file are reported but never fail the gate, so adding or retiring benchmarks
does not break CI.

The exit status is 0 when nothing regressed and 1 otherwise; the summary
table is always printed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Tuple


def load_medians(path: str) -> Dict[str, float]:
    """Map fully-qualified benchmark names to median seconds."""
    with open(path) as handle:
        payload = json.load(handle)
    medians: Dict[str, float] = {}
    for entry in payload.get("benchmarks", []):
        medians[entry["fullname"]] = float(entry["stats"]["median"])
    return medians


def compare(
    baseline: Dict[str, float], current: Dict[str, float], tolerance: float
) -> Tuple[list, list, list]:
    """Split benchmarks into (regressions, ok, unmatched) triples."""
    regressions = []
    ok = []
    unmatched = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline or name not in current:
            side = "baseline" if name in baseline else "current"
            unmatched.append((name, side))
            continue
        before, after = baseline[name], current[name]
        ratio = after / before if before > 0 else float("inf")
        record = (name, before, after, ratio)
        if ratio > tolerance:
            regressions.append(record)
        else:
            ok.append(record)
    return regressions, ok, unmatched


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument("current", help="freshly measured BENCH_pr.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_TOLERANCE", "1.25")),
        help="fail when current/baseline median exceeds this ratio "
        "(default 1.25 = 25%% slower; env BENCH_TOLERANCE overrides)",
    )
    args = parser.parse_args(argv)

    baseline = load_medians(args.baseline)
    current = load_medians(args.current)
    regressions, ok, unmatched = compare(baseline, current, args.tolerance)

    header = f"{'benchmark':<80} {'baseline':>12} {'current':>12} {'ratio':>8}"
    print(header)
    print("-" * len(header))
    for name, before, after, ratio in ok + regressions:
        flag = "  REGRESSION" if ratio > args.tolerance else ""
        print(f"{name:<80} {before:>12.6f} {after:>12.6f} {ratio:>8.2f}{flag}")
    for name, side in unmatched:
        print(f"{name:<80} (only in {side}; ignored)")

    print(
        f"\n{len(ok)} ok, {len(regressions)} regression(s), "
        f"{len(unmatched)} unmatched, tolerance {args.tolerance:.2f}x"
    )
    if regressions:
        print("FAIL: benchmark regression(s) against the committed baseline")
        return 1
    print("OK: no benchmark regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
